"""Tests for the decoupled-hop batched plans and the fused eval family.

Covers bitwise parity of batched GAMLP / GPR-GNN against serial training
(plain batched backend, persistent-pool intra-worker fusion, and the fused
coordinator-eval paths), group-wise personalized broadcasts (FED-PUB /
GCFL+ riding the fused eval instead of per-client forwards), the quantised
``qtopk`` delta transport, and the sync pipeline's per-shard round
wall-time histories.
"""

import numpy as np
import pytest

from repro.datasets import CSBMConfig, generate_csbm, make_split_masks
from repro.federated import FederatedConfig, ProcessPoolBackend
from repro.federated.engine import (
    build_eval_plan,
    encode_topk_delta,
    group_states_by_identity,
    quantise_uniform,
)
from repro.federated.engine.batched import (
    _BatchedGAMLPPlan,
    _BatchedGPRGNNPlan,
)
from repro.federated.engine.persistent import apply_topk_delta
from repro.fgl import build_baseline
from repro.fgl.fedgnn import FederatedGNN

DECOUPLED = ["gamlp", "gprgnn"]
EVAL_FAMILIES = ["gcn", "sgc", "gamlp", "gprgnn"]
PLAN_OF = {"gamlp": _BatchedGAMLPPlan, "gprgnn": _BatchedGPRGNNPlan}


@pytest.fixture(scope="module")
def equal_clients():
    """Four equal-size client graphs: no padding, strict bitwise regime."""
    graphs = []
    for index in range(4):
        config = CSBMConfig(
            num_nodes=50, num_classes=3, num_features=16, avg_degree=6.0,
            edge_homophily=0.7, feature_signal=1.2, blocks_per_class=1,
            seed=10 + index, name=f"equal-{index}")
        graph = generate_csbm(config)
        make_split_masks(graph, 0.5, 0.25, 0.25, seed=index)
        graph.metadata["num_classes"] = 3
        graphs.append(graph)
    return graphs


def _config(backend="serial", rounds=3, **kwargs):
    defaults = dict(rounds=rounds, local_epochs=2, lr=0.02, seed=0,
                    backend=backend,
                    num_workers=2 if backend == "process_pool" else 0)
    defaults.update(kwargs)
    return FederatedConfig(**defaults)


def _run(clients, backend, model, **kwargs):
    trainer = FederatedGNN(clients, model, hidden=16,
                           config=_config(backend, **kwargs))
    history = trainer.run()
    return trainer, history


def _assert_bitwise(a, b):
    assert a.rounds == b.rounds
    np.testing.assert_array_equal(a.loss, b.loss)
    np.testing.assert_array_equal(a.test_accuracy, b.test_accuracy)
    np.testing.assert_array_equal(a.train_accuracy, b.train_accuracy)


class TestBatchedDecoupledParity:
    """Batched GAMLP / GPR-GNN reproduce serial training."""

    @pytest.mark.parametrize("model", DECOUPLED)
    def test_history_bitwise_vs_serial(self, model, equal_clients):
        _, serial_history = _run(equal_clients, "serial", model)
        trainer, batched_history = _run(equal_clients, "batched", model)
        assert trainer.backend.last_fallback is None
        _assert_bitwise(serial_history, batched_history)

    @pytest.mark.parametrize("model", DECOUPLED)
    def test_uneven_clients_within_tolerance(self, model, community_clients):
        # Padded shards accumulate at most BLAS-blocking ulps; histories
        # must stay inside the batched engine's equivalence tolerance.
        _, serial_history = _run(community_clients, "serial", model)
        trainer, batched_history = _run(community_clients, "batched", model)
        assert trainer.backend.last_fallback is None
        np.testing.assert_allclose(batched_history.loss, serial_history.loss,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(batched_history.test_accuracy,
                                   serial_history.test_accuracy, atol=1e-12)

    @pytest.mark.parametrize("model", DECOUPLED)
    def test_final_weights_match_serial(self, model, equal_clients):
        serial_trainer, _ = _run(equal_clients, "serial", model)
        batched_trainer, _ = _run(equal_clients, "batched", model)
        for a, b in zip(serial_trainer.clients, batched_trainer.clients):
            state_a, state_b = a.get_weights(), b.get_weights()
            for key in state_a:
                np.testing.assert_allclose(state_a[key], state_b[key],
                                           rtol=1e-9, atol=1e-12)

    def test_gamlp_hop_stack_precomputed_once(self, equal_clients):
        trainer = FederatedGNN(equal_clients, "gamlp", hidden=16,
                               config=_config("batched"))
        with trainer:
            trainer.run()
            plans = [plan for plan in trainer.backend._plans.values()
                     if isinstance(plan, _BatchedGAMLPPlan)]
            assert len(plans) == 1
            # [x, P̃x, …, P̃ᵏx]: k+1 constant stacked blocks live on the plan.
            k = trainer.clients[0].model.k
            assert len(plans[0].hops) == k + 1
            assert not any(hop.requires_grad for hop in plans[0].hops)

    def test_serial_gamlp_caches_hop_stack(self, equal_clients):
        trainer = FederatedGNN(equal_clients, "gamlp", hidden=16,
                               config=_config("serial", rounds=1))
        trainer.run()
        model = trainer.clients[0].model
        assert len(model._hop_cache) == 1
        (_, cache), = model._hop_cache.values()
        assert cache.num_cached_hops == model.k

    @pytest.mark.parametrize("model", DECOUPLED)
    def test_heterogeneous_k_is_not_fusable(self, model, equal_clients):
        from repro.federated.engine.batched import _homogeneous

        trainers = [FederatedGNN(equal_clients, model, hidden=16,
                                 config=_config("serial", rounds=1))
                    for _ in range(2)]
        mixed = [trainers[0].clients[0], trainers[1].clients[1]]
        assert _homogeneous(mixed)
        mixed[1].model.k += 1  # family signature mismatch → no fusion
        assert not _homogeneous(mixed)


class TestPersistentPoolDecoupled:
    """Worker-resident shard fusion covers the decoupled-hop families."""

    @pytest.mark.parametrize("model", DECOUPLED)
    def test_intra_worker_fusion_matches_serial(self, model, equal_clients):
        _, serial_history = _run(equal_clients, "serial", model)
        trainer, pooled_history = _run(equal_clients, "process_pool", model,
                                       intra_worker="auto")
        _assert_bitwise(serial_history, pooled_history)
        # The pipelined loop (and its fused eval) must actually have run.
        stats = trainer.backend.last_pipeline_stats
        assert stats is not None and stats["round_mode"] == "sync"


class TestFusedEvalFamilies:
    """The fused coordinator eval covers the whole propagation family."""

    EXPECTED_PLAN = {"gcn": "_GCNEvalPlan", "sgc": "_SGCEvalPlan",
                     "gamlp": "_GAMLPEvalPlan", "gprgnn": "_GPRGNNEvalPlan"}

    @pytest.mark.parametrize("model", EVAL_FAMILIES)
    def test_pipelined_eval_bitwise_vs_serial(self, model, community_clients):
        _, serial_history = _run(community_clients, "serial", model)
        trainer, pipelined_history = _run(community_clients, "process_pool",
                                          model, intra_worker="serial")
        stats = trainer.backend.last_pipeline_stats
        assert stats["fused_eval"] == self.EXPECTED_PLAN[model]
        _assert_bitwise(serial_history, pipelined_history)

    @pytest.mark.parametrize("model", EVAL_FAMILIES)
    def test_eval_plan_matches_per_client_predict(self, model,
                                                  community_clients):
        trainer = FederatedGNN(community_clients, model, hidden=16,
                               config=_config("serial", rounds=1))
        trainer.run()
        plan = build_eval_plan(trainer.clients)
        assert plan is not None
        states = [client.get_weights() for client in trainer.clients]
        plan.refresh(states)
        cached = [client._prob_cache[1] for client in trainer.clients]
        for client, fused in zip(trainer.clients, cached):
            client.invalidate_cache()
            np.testing.assert_array_equal(fused, client.predict())

    def test_eval_plan_none_for_unplanned_model(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcnii", hidden=16,
                               config=_config("serial", rounds=1))
        assert build_eval_plan(trainer.clients) is None

    def test_eval_plan_none_for_mismatched_k(self, community_clients):
        trainers = [FederatedGNN(community_clients, "sgc", hidden=16,
                                 config=_config("serial", rounds=1))
                    for _ in range(2)]
        trainers[1].clients[1].model.k += 1
        assert build_eval_plan([trainers[0].clients[0],
                                trainers[1].clients[1]]) is None


class TestGroupwisePersonalizedBroadcast:
    """Personalized broadcasts batch group-wise instead of per-client."""

    def test_group_states_by_identity(self):
        a, b = {"w": np.zeros(1)}, {"w": np.ones(1)}
        groups = group_states_by_identity([a, b, a, a])
        assert [(id(state), members) for state, members in groups] == \
            [(id(a), [0, 2, 3]), (id(b), [1])]

    @pytest.mark.parametrize("baseline", ["fed-pub", "gcfl+"])
    def test_personalized_pipelined_matches_serial(self, baseline,
                                                   community_clients):
        serial = build_baseline(baseline, community_clients,
                                config=_config("serial"))
        serial_history = serial.run()
        pooled = build_baseline(baseline, community_clients,
                                config=_config("process_pool",
                                               intra_worker="serial"))
        pooled_history = pooled.run()
        # Personalized (non-uniform) broadcasts now ride the fused eval.
        stats = pooled.backend.last_pipeline_stats
        assert stats["fused_eval"] == "_GCNEvalPlan"
        _assert_bitwise(serial_history, pooled_history)

    def test_resident_group_write_matches_per_client(self, equal_clients):
        """load_group_state ≡ per-client loads, one write per group."""
        trainer = FederatedGNN(equal_clients, "gamlp", hidden=16,
                               config=_config("serial", rounds=1))
        plan = _BatchedGAMLPPlan(trainer.clients)
        plan.ensure_hot()
        rng = np.random.default_rng(0)
        state = {name: rng.normal(size=param.shape)
                 for name, param in
                 trainer.clients[0].model.named_parameters()}
        plan.load_group_state([1, 3], state)
        for index in (1, 3):
            loaded = plan.client_state(index)
            for key, value in state.items():
                np.testing.assert_array_equal(loaded[key], value)
        untouched = plan.client_state(0)
        original = dict(trainer.clients[0].model.named_parameters())
        for key, value in untouched.items():
            np.testing.assert_array_equal(value, original[key].data)


class TestQuantisedDeltaCodec:
    def test_quantiser_snaps_to_uniform_grid(self):
        values = np.array([-1.0, -0.4, 0.1, 0.8])
        quantised = quantise_uniform(values, bits=3)  # 3 signed levels
        levels = np.round(values / 1.0 * 3.0) / 3.0
        np.testing.assert_allclose(quantised, levels)
        # Extremes are representable exactly; everything lies on the grid.
        assert quantised[0] == -1.0
        grid = np.round(quantised * 3.0) / 3.0
        np.testing.assert_allclose(grid, quantised)

    def test_quantiser_edge_cases(self):
        assert quantise_uniform(np.zeros(4), bits=8).tolist() == [0.0] * 4
        assert quantise_uniform(np.array([]), bits=8).size == 0
        with pytest.raises(ValueError, match="delta_bits"):
            quantise_uniform(np.ones(2), bits=1)

    def test_error_feedback_carries_quantisation_error(self):
        received = {"w": np.zeros(4)}
        trained = {"w": np.array([1.0, -3.0, 0.5, 2.0])}
        payload, residual, _ = encode_topk_delta(trained, received, top_k=2,
                                                 bits=4)
        rebuilt = apply_topk_delta(received, payload)
        # Applied + residual reconstructs the full delta exactly: both the
        # truncated mass AND the per-entry quantisation error feed back.
        np.testing.assert_allclose(rebuilt["w"] + residual["w"], trained["w"])

    def test_quantised_transport_counts_fewer_words(self):
        rng = np.random.default_rng(0)
        received = {"w": rng.normal(size=(16, 8))}
        trained = {"w": received["w"] + rng.normal(size=(16, 8))}
        _, _, float_words = encode_topk_delta(trained, received, top_k=16)
        payload, _, quant_words = encode_topk_delta(trained, received,
                                                    top_k=16, bits=4)
        assert float_words == 2 * 16
        # qtopk ships varint-packed indices + packed values + scale word.
        packed = payload["w"][0]
        assert packed.dtype == np.uint8
        assert quant_words == -(-packed.nbytes // 8) + 1 + 1
        assert quant_words < 16 + 1 + 1  # beats raw int64 index words

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="delta_codec"):
            ProcessPoolBackend(2, delta_codec="zip")
        with pytest.raises(ValueError, match="delta_bits"):
            ProcessPoolBackend(2, delta_codec="qtopk", delta_bits=1)
        backend = ProcessPoolBackend(2, delta_codec="qtopk", delta_top_k=8,
                                     delta_bits=4)
        assert backend.delta_bits == 4

    def test_qtopk_run_ships_fewer_values_than_topk(self, community_clients):
        base = dict(rounds=3, intra_worker="serial", delta_top_k=8)
        uploads = {}
        for codec in ("topk", "qtopk"):
            trainer, history = _run(community_clients, "process_pool", "gcn",
                                    delta_codec=codec, delta_bits=4, **base)
            uploads[codec] = \
                trainer.backend.transport.uploaded["parameter_delta"]
            assert np.all(np.isfinite(history.loss))
        assert uploads["qtopk"] < uploads["topk"]


class TestRoundTimeHistory:
    def test_sync_pipeline_records_per_client_round_times(
            self, community_clients):
        trainer, history = _run(community_clients, "process_pool", "gcn",
                                intra_worker="serial")
        assert len(history.client_round_sec) == len(history.rounds)
        for per_client in history.client_round_sec:
            assert set(per_client) == \
                {c.client_id for c in trainer.clients}
            assert all(sec >= 0.0 for sec in per_client.values())

    def test_serial_loop_leaves_round_times_empty(self, community_clients):
        _, history = _run(community_clients, "serial", "gcn")
        assert all(not per_client for per_client in history.client_round_sec)

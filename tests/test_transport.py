"""Transport layer: framed TCP channels, WAN simulation, parity, recovery.

The tentpole bar this file enforces (see README "Transports"):

* frame codec integrity — CRC failures and stream desync are distinct,
  recoverable vs fatal conditions;
* the simulated WAN model is seed-deterministic;
* sync-path ``TrainingHistory`` is **bitwise-equal** between
  ``transport="pipe"`` and ``transport="tcp"`` on localhost — including the
  hierarchical fold and the lossy qtopk codec;
* injected network faults (``delay`` / ``drop_msg`` / ``reorder`` /
  ``partition``) cost time, never data: histories stay bitwise-equal to the
  failure-free run while the channel stats show the faults actually fired;
* a severed link that outlives the reconnect window surfaces as a dead
  worker and the PR 6 ``on_worker_failure`` supervision recovers bitwise;
* heartbeat liveness detects a silent (SIGSTOP'd) worker;
* externally launched workers (``python -m repro.cli worker``) serve the
  same command protocol over ``mode="external"``.

CI runs this file as the ``transport-smoke`` job under the per-test hang
guard (``REPRO_TEST_TIMEOUT``), because a transport bug's natural failure
mode is a wedged round.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.federated import FederatedConfig
from repro.federated.engine import (
    FaultEvent,
    FaultPlan,
    PersistentWorkerPool,
    TcpTransport,
    WorkerCrash,
    WorkerError,
    make_transport,
)
from repro.federated.engine.backends import ProcessPoolBackend
from repro.federated.engine.transport import (
    F_DATA,
    FrameCorruption,
    StreamDesync,
    WanLink,
    WanModel,
    pack_frame,
    read_frame,
)
from repro.fgl.fedgnn import FederatedGNN
from repro.simulation import community_split

#: knobs that keep failure detection fast without destabilising slow CI
FAST_KNOBS = dict(heartbeat_interval=0.1, heartbeat_timeout=1.5,
                  retransmit_timeout=0.1)


@pytest.fixture(scope="module")
def four_clients(homophilous_graph):
    return community_split(homophilous_graph, 4, seed=0)


def _run(clients, rounds=3, **kwargs):
    defaults = dict(rounds=rounds, local_epochs=2, lr=0.02, seed=0,
                    backend="process_pool", num_workers=2,
                    intra_worker="serial")
    defaults.update(kwargs)
    trainer = FederatedGNN(clients, "gcn", hidden=16,
                           config=FederatedConfig(**defaults))
    history = trainer.run()
    return trainer, history


def _assert_history_bitwise(a, b):
    assert a.rounds == b.rounds
    np.testing.assert_array_equal(a.loss, b.loss)
    np.testing.assert_array_equal(a.test_accuracy, b.test_accuracy)
    np.testing.assert_array_equal(a.train_accuracy, b.train_accuracy)


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            left.sendall(pack_frame(F_DATA, 7, 3, b"payload bytes"))
            ftype, seq, ack, payload = read_frame(right)
            assert (ftype, seq, ack, payload) == (F_DATA, 7, 3,
                                                  b"payload bytes")
            left.sendall(pack_frame(F_DATA, 8, 3))     # empty payload
            assert read_frame(right)[3] == b""
        finally:
            left.close()
            right.close()

    def test_payload_corruption_is_detected_and_recoverable(self):
        left, right = socket.socketpair()
        try:
            frame = bytearray(pack_frame(F_DATA, 1, 0, b"x" * 64))
            frame[-1] ^= 0xFF                          # damage the payload
            left.sendall(bytes(frame))
            with pytest.raises(FrameCorruption):
                read_frame(right)
            # The stream stays aligned: the next clean frame still parses.
            left.sendall(pack_frame(F_DATA, 2, 0, b"clean"))
            assert read_frame(right)[3] == b"clean"
        finally:
            left.close()
            right.close()

    def test_header_corruption_is_fatal_desync(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"garbage!" + pack_frame(F_DATA, 1, 0, b"x"))
            with pytest.raises(StreamDesync):
                read_frame(right)
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# Simulated WAN model
# ----------------------------------------------------------------------
class TestWanModel:
    def test_delay_accounts_latency_jitter_and_bandwidth(self):
        model = WanModel.from_spec({"latency_ms": 10, "jitter_ms": 5,
                                    "bandwidth_mbps": 8, "seed": 3})
        state = model.state_for(0, "down")
        delay = state.delay_for(1_000_000)     # 1 MB at 8 Mbit/s = 1 s
        assert 1.010 <= delay <= 1.015

    def test_seeded_links_are_deterministic(self):
        spec = {"latency_ms": 5, "jitter_ms": 10, "loss": 0.3, "seed": 11,
                "per_worker": {1: {"latency_ms": 80}}}
        a, b = WanModel.from_spec(spec), WanModel.from_spec(spec)
        for worker in (0, 1):
            for direction in ("down", "up"):
                sa = a.state_for(worker, direction)
                sb = b.state_for(worker, direction)
                assert [sa.delay_for(100) for _ in range(20)] == \
                    [sb.delay_for(100) for _ in range(20)]
                assert [sa.drops() for _ in range(20)] == \
                    [sb.drops() for _ in range(20)]
        assert a.link_for(1).latency_ms == 80
        assert a.link_for(0).latency_ms == 5

    def test_directions_and_workers_draw_independent_streams(self):
        model = WanModel.from_spec({"jitter_ms": 50, "seed": 0})
        down = [model.state_for(0, "down").delay_for(0) for _ in range(8)]
        up = [model.state_for(0, "up").delay_for(0) for _ in range(8)]
        other = [model.state_for(1, "down").delay_for(0) for _ in range(8)]
        assert down != up and down != other


# ----------------------------------------------------------------------
# Transport selection / validation
# ----------------------------------------------------------------------
class TestSelection:
    def test_pipe_takes_no_options(self):
        with pytest.raises(ValueError, match="no options"):
            make_transport("pipe", {"port": 1})
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport("carrier-pigeon")

    def test_backend_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ProcessPoolBackend(num_workers=2, transport="smoke-signal")

    def test_network_faults_require_tcp(self):
        plan = FaultPlan([FaultEvent(0, 2, "delay", duration=0.1)])
        with pytest.raises(ValueError, match="network"):
            ProcessPoolBackend(num_workers=2, fault_plan=plan)
        # The same plan is accepted when the transport has a wire.
        backend = ProcessPoolBackend(num_workers=2, fault_plan=plan,
                                     transport="tcp")
        assert backend.transport_name == "tcp"

    def test_pipe_channel_refuses_injection(self):
        pool = PersistentWorkerPool(1)
        try:
            with pytest.raises(WorkerError, match="network fault"):
                pool.inject_network_fault(0, "delay", 0.1)
        finally:
            pool.shutdown()

    def test_network_events_validate_durations(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(0, 1, "partition")
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(0, 1, "delay", duration=0.0)
        FaultEvent(0, 1, "drop_msg")     # loss events need no duration
        FaultEvent(0, 1, "reorder")


# ----------------------------------------------------------------------
# Bitwise parity: pipe vs tcp on localhost
# ----------------------------------------------------------------------
class TestTcpParity:
    def test_sync_history_bitwise_equal(self, four_clients):
        _, pipe = _run(four_clients)
        trainer, tcp = _run(four_clients, transport="tcp")
        _assert_history_bitwise(pipe, tcp)
        stats = trainer.backend.last_pipeline_stats["transport"]
        assert stats["transport"] == "tcp"
        assert stats["frames_sent"] > 0 and stats["crc_failures"] == 0

    def test_hierarchical_fold_bitwise_equal(self, four_clients):
        _, pipe = _run(four_clients, hierarchical=True)
        _, tcp = _run(four_clients, hierarchical=True, transport="tcp")
        _assert_history_bitwise(pipe, tcp)

    def test_qtopk_codec_bitwise_equal(self, four_clients):
        codec = dict(delta_codec="qtopk", delta_top_k=16, delta_bits=8)
        _, pipe = _run(four_clients, **codec)
        _, tcp = _run(four_clients, transport="tcp", **codec)
        _assert_history_bitwise(pipe, tcp)

    def test_wan_link_slows_but_never_changes_results(self, four_clients):
        _, pipe = _run(four_clients)
        trainer, tcp = _run(
            four_clients, transport="tcp",
            transport_options={"wan": {"latency_ms": 15, "jitter_ms": 5,
                                       "loss": 0.05, "seed": 4},
                               **FAST_KNOBS})
        _assert_history_bitwise(pipe, tcp)
        stats = trainer.backend.last_pipeline_stats["transport"]
        assert stats["transport"] == "tcp"
        assert stats["wan_dropped"] >= 1       # loss=0.05 fires, data survives


# ----------------------------------------------------------------------
# Network fault events: flaky links cost time, never data
# ----------------------------------------------------------------------
class TestNetworkFaults:
    def test_drop_reorder_delay_are_bitwise_transparent(self, four_clients):
        _, baseline = _run(four_clients, rounds=4)
        plan = FaultPlan([FaultEvent(0, 2, "drop_msg"),
                          FaultEvent(1, 2, "reorder"),
                          FaultEvent(0, 3, "delay", duration=0.3)])
        trainer, history = _run(four_clients, rounds=4, transport="tcp",
                                transport_options=dict(FAST_KNOBS),
                                fault_plan=plan)
        _assert_history_bitwise(baseline, history)
        assert trainer.backend.fault_stats["network_faults"] == 3
        assert trainer.backend.fault_stats["crashes"] == 0
        stats = trainer.backend.last_pipeline_stats["transport"]
        assert stats["injected_faults"] == 3
        assert stats["retransmits"] >= 1          # the dropped frame

    def test_retransmit_survives_heartbeat_pacing(self, four_clients):
        """Regression: heartbeats must not suppress the retransmit gate.
        With ``heartbeat_interval < retransmit_timeout`` the outgoing
        heartbeats used to keep refreshing the write clock the gate paced
        on, so a lossy link's dropped DATA frame was never resent and the
        round wedged forever."""
        _, baseline = _run(four_clients)
        trainer, history = _run(
            four_clients, transport="tcp",
            transport_options={"heartbeat_interval": 0.05,
                               "heartbeat_timeout": 5.0,
                               "retransmit_timeout": 0.3,
                               "wan": {"loss": 0.25, "seed": 0}})
        _assert_history_bitwise(baseline, history)
        stats = trainer.backend.last_pipeline_stats["transport"]
        assert stats["wan_dropped"] >= 1
        assert stats["retransmits"] >= 1

    def test_partition_reconnects_and_resumes_bitwise(self, four_clients):
        """A short partition severs the socket mid-round; the worker dials
        back in, the session resumes from the cumulative acks, and the
        history stays bitwise-equal to failure-free — no crash recovery."""
        _, baseline = _run(four_clients, rounds=4)
        plan = FaultPlan([FaultEvent(1, 2, "partition", duration=0.4)])
        trainer, history = _run(four_clients, rounds=4, transport="tcp",
                                transport_options=dict(FAST_KNOBS),
                                fault_plan=plan)
        _assert_history_bitwise(baseline, history)
        assert trainer.backend.fault_stats["crashes"] == 0
        stats = trainer.backend.last_pipeline_stats["transport"]
        assert stats["reconnects"] >= 1

    def test_dead_link_runs_crash_supervision_bitwise(self, four_clients):
        """A partition outliving the reconnect window is a dead worker: the
        PR 6 restart policy respawns it and recovery snapshots reproduce
        the failure-free history bitwise (the mid-round socket-kill bar)."""
        _, baseline = _run(four_clients, rounds=4)
        plan = FaultPlan([FaultEvent(0, 2, "partition", duration=30.0)])
        trainer, history = _run(
            four_clients, rounds=4, transport="tcp",
            transport_options={**FAST_KNOBS, "reconnect_window": 0.5},
            on_worker_failure="restart", fault_plan=plan)
        _assert_history_bitwise(baseline, history)
        assert trainer.backend.fault_stats["crashes"] == 1
        assert trainer.backend.fault_stats["restarts"] == 1

    def test_worker_crash_over_tcp_restarts_bitwise(self, four_clients):
        """The PR 6 crash chaos, rerun over sockets: a dead TCP link must
        look exactly like a dead pipe to the supervision layer."""
        _, baseline = _run(four_clients, rounds=4)
        plan = FaultPlan([FaultEvent(1, 2, "crash")])
        trainer, history = _run(
            four_clients, rounds=4, transport="tcp",
            transport_options={**FAST_KNOBS, "reconnect_window": 0.5},
            on_worker_failure="restart", fault_plan=plan)
        _assert_history_bitwise(baseline, history)
        assert trainer.backend.fault_stats["crashes"] == 1


# ----------------------------------------------------------------------
# Liveness and external workers
# ----------------------------------------------------------------------
class TestLiveness:
    def test_heartbeat_detects_silent_worker(self):
        """A SIGSTOP'd worker answers nothing and closes nothing — only
        heartbeat timeouts can tell the coordinator the link is gone."""
        transport = TcpTransport(heartbeat_interval=0.1,
                                 heartbeat_timeout=0.5,
                                 reconnect_window=0.5)
        pool = PersistentWorkerPool(1, transport=transport)
        process = pool._procs[0]
        try:
            assert pool.call(0, "fetch_all", False) == {}
            os.kill(process.pid, signal.SIGSTOP)
            try:
                pool.send(0, "fetch_all", False)
                with pytest.raises(WorkerCrash):
                    deadline = time.monotonic() + 15.0
                    while time.monotonic() < deadline:
                        if pool.poll(0):
                            pool.recv(0)
                            break
                        time.sleep(0.05)
                    else:
                        pytest.fail("heartbeat never declared the link dead")
            finally:
                os.kill(process.pid, signal.SIGCONT)
        finally:
            pool.shutdown()

    def test_external_worker_dials_in_via_cli(self):
        """mode='external' + ``python -m repro.cli worker`` is the
        cross-host deployment shape (here: localhost loopback)."""
        transport = TcpTransport(mode="external", token="s3cret",
                                 connect_timeout=60.0)
        pool = None
        worker = None
        try:
            pool = PersistentWorkerPool(1, transport=transport)
            host, port = transport.address
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), os.pardir, "src"),
                 env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker",
                 "--connect", f"{host}:{port}", "--worker-id", "0",
                 "--token", "s3cret"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            assert pool.call(0, "fetch_all", False) == {}
            assert pool.is_alive(0)
        finally:
            if pool is not None:
                pool.shutdown()
            if worker is not None:
                try:
                    worker.wait(timeout=20)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    worker.wait(timeout=10)
                    pytest.fail("external worker did not exit after stop")

"""Tests for Module/Parameter registration, layers and losses."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.nn import (
    CrossEntropyLoss,
    Dropout,
    Identity,
    KnowledgePreservingLoss,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
)
from repro.nn.init import glorot_uniform, he_uniform, zeros_init


class TestModule:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2)))
                self.child = Linear(2, 3)

        toy = Toy()
        names = [name for name, _ in toy.named_parameters()]
        assert "w" in names
        assert any(name.startswith("child.") for name in names)

    def test_num_parameters(self):
        layer = Linear(4, 3)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self):
        a = MLP(4, [8], 3, seed=0)
        b = MLP(4, [8], 3, seed=1)
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_returns_copies(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"][:] = 99.0
        assert not np.allclose(layer.weight.data, 99.0)

    def test_load_state_dict_missing_key(self):
        layer = Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_shape_mismatch(self):
        layer = Linear(2, 2)
        bad = layer.state_dict()
        bad["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_train_eval_propagates(self):
        mlp = MLP(4, [8], 2)
        mlp.eval()
        assert not mlp.training
        assert not mlp.dropout.training
        mlp.train()
        assert mlp.dropout.training

    def test_zero_grad_clears_all(self):
        mlp = MLP(3, [4], 2)
        out = mlp(Tensor(np.ones((5, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 7)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 7)

    def test_linear_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert "bias" not in dict(layer.named_parameters())

    def test_linear_gradients_flow(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    def test_sequential_order(self):
        seq = Sequential(Linear(2, 4), Identity(), Linear(4, 1))
        out = seq(Tensor(np.ones((3, 2))))
        assert out.shape == (3, 1)
        assert len(seq) == 3

    def test_mlp_no_hidden_is_linear(self):
        mlp = MLP(4, [], 2)
        assert len(mlp._layer_names) == 1

    def test_mlp_output_shape(self):
        mlp = MLP(6, [8, 8], 3)
        out = mlp(Tensor(np.ones((10, 6))))
        assert out.shape == (10, 3)

    def test_dropout_eval_mode_identity(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        assert layer(x) is x

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_mlp_deterministic_given_seed(self):
        a = MLP(4, [8], 2, seed=3)
        b = MLP(4, [8], 2, seed=3)
        x = Tensor(np.ones((2, 4)))
        a.eval(), b.eval()
        assert np.allclose(a(x).data, b(x).data)


class TestInit:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform(100, 100, rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= limit)

    def test_he_bounds(self):
        rng = np.random.default_rng(0)
        w = he_uniform(50, 10, rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 50))

    def test_zeros_init(self):
        assert np.all(zeros_init(3, 4) == 0)
        assert zeros_init(5).shape == (5,)


class TestLossWrappers:
    def test_cross_entropy_loss_callable(self):
        loss_fn = CrossEntropyLoss()
        logits = Tensor(np.zeros((3, 2)))
        loss = loss_fn(logits, np.array([0, 1, 0]))
        assert loss.item() == pytest.approx(np.log(2.0))

    def test_knowledge_preserving_loss_weight(self):
        loss_fn = KnowledgePreservingLoss(weight=0.5)
        a = Tensor(np.array([[3.0, 4.0]]))
        value = loss_fn(a, np.zeros((1, 2)))
        assert value.item() == pytest.approx(2.5, abs=1e-5)

"""Tests for SGD / Adam optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, MLP
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, clip_grad_norm
from repro.autograd import functional as F


def quadratic_loss(param):
    """Simple convex objective (param - 3)^2 summed."""
    diff = param - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_direction(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1)
        loss = quadratic_loss(p)
        loss.backward()
        opt.step()
        assert p.data[0] > 0.0  # moved towards 3

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0, 10.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, [3.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([0.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_skips_parameters_without_grad(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        opt = SGD([p1, p2], lr=0.1)
        (p1 * 2.0).sum().backward()
        opt.step()
        assert p2.data[0] == pytest.approx(1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([-5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        quadratic_loss(p).backward()
        opt.step()
        # With bias correction, the first Adam step is ~lr in magnitude.
        assert abs(abs(p.data[0]) - 0.1) < 0.02

    def test_trains_mlp_to_fit_labels(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 5))
        labels = (x[:, 0] > 0).astype(int)
        mlp = MLP(5, [16], 2, dropout=0.0, seed=0)
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = F.cross_entropy(mlp(Tensor(x)), labels)
            loss.backward()
            opt.step()
        predictions = mlp(Tensor(x)).data.argmax(axis=1)
        assert np.mean(predictions == labels) > 0.95

    def test_weight_decay_applies(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.01, weight_decay=10.0)
        for _ in range(50):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 5.0


class TestClipGradNorm:
    def test_no_clipping_below_threshold(self):
        p = Parameter(np.array([1.0]))
        (p * 2.0).sum().backward()
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(2.0)
        assert p.grad[0] == pytest.approx(2.0)

    def test_clipping_above_threshold(self):
        p = Parameter(np.array([1.0, 1.0]))
        (p * 10.0).sum().backward()
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-6)

    def test_empty_returns_zero(self):
        assert clip_grad_norm([], max_norm=1.0) == 0.0

    def test_ignores_parameters_without_grad(self):
        p = Parameter(np.ones(3))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

"""Tests for the experiment harness: runner, tables, grid search."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    compare_methods,
    format_series,
    format_table,
    grid_search,
    prepare_clients,
    run_method,
)
from repro.experiments.runner import available_methods
from repro.experiments.tables import best_method


FAST = ExperimentSettings(num_clients=3, rounds=3, local_epochs=2,
                          personalized_epochs=8, hidden=16, seed=0)


class TestSettings:
    def test_federated_config_reflects_settings(self):
        config = FAST.federated_config()
        assert config.rounds == 3
        assert config.local_epochs == 2

    def test_adafgl_config_overrides(self):
        config = FAST.adafgl_config(alpha=0.3, use_hcs=False)
        assert config.alpha == 0.3
        assert not config.use_hcs
        assert config.rounds == FAST.rounds

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUNDS", "7")
        monkeypatch.setenv("REPRO_CLIENTS", "4")
        settings = ExperimentSettings()
        assert settings.rounds == 7
        assert settings.num_clients == 4

    def test_env_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUNDS", "not-a-number")
        assert ExperimentSettings().rounds == 20


class TestPrepareClients:
    def test_community_split(self, cora_small):
        clients = prepare_clients("cora", "community", FAST, graph=cora_small)
        assert sum(c.num_nodes for c in clients) == cora_small.num_nodes

    def test_structure_split(self, cora_small):
        clients = prepare_clients("cora", "structure", FAST, graph=cora_small)
        assert all(c.metadata["split"] == "structure-noniid" for c in clients)

    def test_unknown_split(self, cora_small):
        with pytest.raises(ValueError):
            prepare_clients("cora", "quantum", FAST, graph=cora_small)


class TestRunMethod:
    def test_baseline_summary_keys(self, community_clients):
        result = run_method("fedgcn", community_clients, FAST)
        assert set(result) >= {"method", "accuracy", "history",
                               "communication", "trainer"}
        assert 0.0 <= result["accuracy"] <= 1.0

    def test_adafgl_runs(self, community_clients):
        result = run_method("adafgl", community_clients, FAST)
        assert result["accuracy"] > 0.0
        assert result["communication"]["rounds"] == FAST.rounds

    def test_adafgl_overrides_forwarded(self, community_clients):
        result = run_method("adafgl", community_clients, FAST,
                            adafgl_overrides={"use_hcs": False})
        assert result["trainer"].config.use_hcs is False

    def test_compare_methods(self, community_clients):
        results = compare_methods(["fedgcn", "fedmlp"], community_clients, FAST)
        assert set(results) == {"fedgcn", "fedmlp"}
        assert isinstance(best_method(results), str)

    def test_available_methods_include_adafgl(self):
        assert "adafgl" in available_methods()


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "acc"], [["fedgcn", 0.81], ["adafgl", 0.9]],
                            title="Table X")
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "fedgcn" in text and "0.900" in text

    def test_format_table_handles_non_floats(self):
        text = format_table(["a"], [[1], ["x"]])
        assert "1" in text and "x" in text

    def test_format_series(self):
        text = format_series("accuracy", [1, 2], [0.5, 0.75])
        assert "series: accuracy" in text
        assert "0.750" in text


class TestGridSearch:
    def test_finds_maximum(self):
        best, score, results = grid_search(
            lambda x, y: -(x - 2) ** 2 - (y - 1) ** 2,
            {"x": [0, 1, 2, 3], "y": [0, 1, 2]})
        assert best == {"x": 2, "y": 1}
        assert score == 0.0
        assert len(results) == 12

    def test_single_point(self):
        best, score, results = grid_search(lambda a: a, {"a": [5]})
        assert best == {"a": 5}
        assert score == 5

"""Serving subsystem: snapshots, micro-batched engine, parity and caches."""

from __future__ import annotations

import logging
import os

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, no_grad
from repro.federated import FederatedConfig
from repro.federated.client import Client
from repro.federated.engine import batched
from repro.federated.engine.backends import (
    restore_client_state,
    snapshot_client_state,
)
from repro.federated.engine.batched import build_eval_plan
from repro.federated.trainer import resolve_checkpoint_path
from repro.fgl import build_baseline, make_model_factory
from repro.graph import Graph
from repro.models import GCN, GCNII
from repro.serving import (
    AdmissionRejected,
    InductiveQuery,
    QueryEngine,
    ServingSnapshot,
    SubgraphLRU,
    TransductiveQuery,
    build_query_mix,
    extract_block,
    khop_nodes,
    receptive_depth,
    run_open_loop,
)
from repro.models.base import prepare_propagation


@pytest.fixture(scope="module")
def trained_trainer(request):
    graphs = request.getfixturevalue("community_clients")
    trainer = build_baseline(
        "fedgcn", graphs,
        config=FederatedConfig(rounds=2, local_epochs=1, seed=0), hidden=16)
    trainer.run()
    return trainer


@pytest.fixture(scope="module")
def snapshot(trained_trainer):
    return ServingSnapshot.from_trainer(trained_trainer)


@pytest.fixture(scope="module")
def offline_probs(trained_trainer):
    """Fresh serial per-client predictions — the parity reference."""
    reference = {}
    for client in trained_trainer.clients:
        client.invalidate_cache()
        reference[client.client_id] = np.array(client.predict(), copy=True)
    return reference


# ----------------------------------------------------------------------
# Snapshot export & round-trips
# ----------------------------------------------------------------------
def test_snapshot_matches_offline_predictions(snapshot, offline_probs):
    """Precomputed tables == offline Client.predict, bitwise (numpy)."""
    assert snapshot.client_ids == sorted(offline_probs)
    for client_id, probs in offline_probs.items():
        assert np.array_equal(snapshot.entries[client_id].probs, probs)


def test_snapshot_is_frozen_against_further_training(community_clients):
    trainer = build_baseline(
        "fedgcn", community_clients,
        config=FederatedConfig(rounds=1, local_epochs=1, seed=0), hidden=16)
    trainer.run()
    snap = ServingSnapshot.from_trainer(trainer)
    frozen_states = {cid: {key: value.copy()
                           for key, value in entry.state.items()}
                     for cid, entry in snap.entries.items()}
    frozen_probs = {cid: entry.probs.copy()
                    for cid, entry in snap.entries.items()}
    trainer.run(rounds=2)   # continue training past the snapshot
    for cid, entry in snap.entries.items():
        assert np.array_equal(entry.probs, frozen_probs[cid])
        for key, value in entry.state.items():
            assert np.array_equal(value, frozen_states[cid][key])
        # The deep-copied model did not follow the live client either.
        model_state = entry.model.state_dict()
        for key, value in frozen_states[cid].items():
            assert np.array_equal(model_state[key], value)


def test_snapshot_pickle_roundtrip(tmp_path, snapshot, offline_probs):
    path = os.path.join(tmp_path, "export", "snap.pkl")
    snapshot.save(path)
    restored = ServingSnapshot.load(path)
    assert restored.model_family == snapshot.model_family
    assert restored.source == snapshot.source
    assert restored.client_ids == snapshot.client_ids
    for client_id, probs in offline_probs.items():
        assert np.array_equal(restored.entries[client_id].probs, probs)


def test_snapshot_from_checkpoint_matches_live(tmp_path, community_clients):
    config = FederatedConfig(rounds=2, local_epochs=1, seed=0,
                             checkpoint_every=1,
                             checkpoint_dir=str(tmp_path))
    trainer = build_baseline("fedgcn", community_clients, config=config,
                             hidden=16)
    trainer.run()
    live = ServingSnapshot.from_trainer(trainer)
    from_ckpt = ServingSnapshot.from_checkpoint(
        "latest", community_clients, make_model_factory("gcn", hidden=16),
        checkpoint_dir=str(tmp_path))
    assert from_ckpt.source == "checkpoint"
    assert from_ckpt.round_index == 2
    for client_id in live.entries:
        assert np.array_equal(from_ckpt.entries[client_id].probs,
                              live.entries[client_id].probs)
        for key, value in live.entries[client_id].state.items():
            assert np.array_equal(from_ckpt.entries[client_id].state[key],
                                  value)


def test_snapshot_hop_blocks_are_exact(snapshot):
    entry = snapshot.entries[0]
    operator = prepare_propagation(entry.graph.adjacency)
    expected_one = operator @ entry.graph.features
    expected_two = operator @ expected_one
    blocks = snapshot.hop_blocks(0, 2)
    assert np.allclose(blocks[0], expected_one)
    assert np.allclose(blocks[1], expected_two)
    # second ask reuses the PropagationCache (no fresh compute object)
    assert snapshot.entries[0].propagation.num_cached_hops == 2


def test_snapshot_from_adafgl_is_transductive_only(tiny_graph):
    from repro.core import AdaFGL, AdaFGLConfig
    from repro.simulation import community_split

    graphs = community_split(tiny_graph, 2, seed=0)
    method = AdaFGL(graphs, AdaFGLConfig(rounds=1, local_epochs=1,
                                         personalized_epochs=2, seed=0))
    method.run()
    snap = ServingSnapshot.from_adafgl(method)
    assert snap.model_family == "AdaFGL"
    assert not snap.inductive_capable
    for pc in method.personalized:
        assert np.array_equal(snap.entries[pc.client_id].probs, pc.predict())
    with QueryEngine(snap, max_batch=1, max_delay_ms=0.0) as engine:
        future = engine.submit(InductiveQuery(
            0, np.zeros(tiny_graph.num_features), [0]))
        with pytest.raises(ValueError, match="transductive-only"):
            future.result(timeout=10)


# ----------------------------------------------------------------------
# Checkpoint-path resolution (resume_from="latest")
# ----------------------------------------------------------------------
def test_resolve_checkpoint_path(tmp_path):
    assert resolve_checkpoint_path("/some/file.ckpt") == "/some/file.ckpt"
    with pytest.raises(FileNotFoundError, match="latest"):
        resolve_checkpoint_path("latest", str(tmp_path))
    latest = tmp_path / "latest.ckpt"
    latest.write_bytes(b"x")
    assert resolve_checkpoint_path("latest", str(tmp_path)) == str(latest)


def test_trainer_resumes_from_latest(tmp_path, community_clients):
    config = FederatedConfig(rounds=2, local_epochs=1, seed=0,
                             checkpoint_every=1,
                             checkpoint_dir=str(tmp_path))
    first = build_baseline("fedgcn", community_clients, config=config,
                           hidden=16)
    first.run()
    resumed = build_baseline(
        "fedgcn", community_clients,
        config=FederatedConfig(rounds=2, local_epochs=1, seed=0,
                               checkpoint_dir=str(tmp_path),
                               resume_from="latest"), hidden=16)
    assert resumed.load_checkpoint("latest") == 2
    for mine, theirs in zip(resumed.clients, first.clients):
        for key, value in theirs.get_weights().items():
            assert np.array_equal(mine.get_weights()[key], value)


# ----------------------------------------------------------------------
# Prediction-cache staleness on out-of-band state loads
# ----------------------------------------------------------------------
def test_restore_invalidates_prediction_cache(tiny_graph):
    client = Client(0, tiny_graph,
                    GCN(tiny_graph.num_features, 8, tiny_graph.num_classes,
                        seed=0))
    stale = np.array(client.predict(), copy=True)   # primes the cache
    saved = snapshot_client_state(client, include_weights=False)
    # Out-of-band mutation: bypasses set_weights, so the version key alone
    # would keep serving the stale cache.
    client.model.load_state_dict(
        {key: value * 0.5 for key, value in client.get_weights().items()})
    restore_client_state(client, saved, include_weights=False)
    fresh = client.predict()
    assert not np.array_equal(stale, fresh)
    client.invalidate_cache()
    assert np.array_equal(fresh, client.predict())


def test_client_load_state_roundtrip(tiny_graph):
    source = Client(0, tiny_graph,
                    GCN(tiny_graph.num_features, 8, tiny_graph.num_classes,
                        seed=0))
    source.local_train(epochs=2)
    target = Client(0, tiny_graph,
                    GCN(tiny_graph.num_features, 8, tiny_graph.num_classes,
                        seed=1))
    target.predict()   # prime a cache the load must drop
    target.load_state(snapshot_client_state(source))
    assert np.array_equal(target.predict(), source.predict())


# ----------------------------------------------------------------------
# build_eval_plan fallback warning (one per family)
# ----------------------------------------------------------------------
def test_eval_plan_warns_once_for_unsupported_family(tiny_graph, caplog):
    batched._WARNED_EVAL_FAMILIES.discard("GCNII")
    clients = [Client(index, tiny_graph,
                      GCNII(tiny_graph.num_features, 8,
                            tiny_graph.num_classes, seed=index))
               for index in range(2)]
    with caplog.at_level(logging.WARNING,
                         logger="repro.federated.engine.batched"):
        assert build_eval_plan(clients) is None
        assert any("GCNII" in record.message and "serial" in record.message
                   for record in caplog.records)
        caplog.clear()
        assert build_eval_plan(clients) is None   # second call stays silent
        assert not caplog.records


# ----------------------------------------------------------------------
# Subgraph extraction
# ----------------------------------------------------------------------
def _path_graph(num_nodes: int) -> Graph:
    import scipy.sparse as sp

    adjacency = sp.diags([np.ones(num_nodes - 1)] * 2, [1, -1]).tocsr()
    features = np.arange(num_nodes, dtype=np.float64).reshape(-1, 1)
    labels = np.zeros(num_nodes, dtype=np.int64)
    return Graph(adjacency=adjacency, features=features, labels=labels,
                 metadata={"num_classes": 2})


def test_khop_nodes_on_a_path():
    graph = _path_graph(10)
    assert khop_nodes(graph.adjacency, [5], 0).tolist() == [5]
    assert khop_nodes(graph.adjacency, [5], 1).tolist() == [4, 5, 6]
    assert khop_nodes(graph.adjacency, [5], 2).tolist() == [3, 4, 5, 6, 7]
    assert khop_nodes(graph.adjacency, [0], 100).tolist() == list(range(10))


def test_extract_block_appends_new_node_last():
    graph = _path_graph(10)
    block = extract_block(graph, [4, 6], depth=2)
    # depth 2 → anchors + 1 hop
    assert block.nodes.tolist() == [3, 4, 5, 6, 7]
    assert block.new_index == 5
    dense = block.adjacency.toarray()
    assert dense.shape == (6, 6)
    assert dense[5, 1] == 1.0 and dense[1, 5] == 1.0   # new ↔ node 4
    assert dense[5, 3] == 1.0 and dense[3, 5] == 1.0   # new ↔ node 6
    assert np.array_equal(dense[:5, :5],
                          graph.adjacency[3:8, 3:8].toarray())
    with pytest.raises(ValueError, match="anchor"):
        extract_block(graph, [99], depth=2)
    with pytest.raises(ValueError, match="anchor"):
        extract_block(graph, [], depth=2)


def test_receptive_depth_by_family(tiny_graph):
    from repro.models import GAMLP, SGC, GloGNN

    features, classes = tiny_graph.num_features, tiny_graph.num_classes
    assert receptive_depth(GCN(features, 8, classes, num_layers=3)) == 3
    assert receptive_depth(SGC(features, classes, k=2)) == 2
    assert receptive_depth(GAMLP(features, 8, classes, k=4)) == 4
    assert receptive_depth(GloGNN(features, 8, classes)) is None


# ----------------------------------------------------------------------
# Query engine: parity
# ----------------------------------------------------------------------
def test_transductive_queries_bitwise_match_offline(snapshot, offline_probs):
    with QueryEngine(snapshot, max_batch=8, max_delay_ms=1.0) as engine:
        for client_id, probs in offline_probs.items():
            for node in (0, 3, probs.shape[0] - 1):
                result = engine.query(TransductiveQuery(client_id, node),
                                      timeout=30)
                assert result.path == "table"
                assert np.array_equal(result.probs, probs[node])
                assert result.label == int(np.argmax(probs[node]))


def test_inductive_fused_bitwise_matches_serial_and_reference(snapshot):
    entry = snapshot.entries[0]
    rng = np.random.default_rng(7)
    queries = [InductiveQuery(0, entry.graph.features[n] +
                              0.1 * rng.standard_normal(
                                  entry.graph.num_features),
                              anchors=[n, (n + 1) % entry.graph.num_nodes])
               for n in (1, 5, 9, 13)]

    # Hand-built reference: forward over the extracted augmented block.
    references = []
    for query in queries:
        block = extract_block(entry.graph, query.anchors,
                              receptive_depth(entry.model))
        augmented = np.concatenate(
            [block.features, np.asarray(query.features).reshape(1, -1)])
        entry.model.eval()
        with no_grad():
            logits = entry.model(Tensor(augmented), block.adjacency)
            probs = F.softmax(logits, axis=-1).numpy()
        references.append(probs[block.new_index])

    with QueryEngine(snapshot, max_batch=4, max_delay_ms=200.0) as engine:
        futures = [engine.submit(query) for query in queries]
        fused = [future.result(timeout=30) for future in futures]
    assert [result.path for result in fused] == ["fused"] * 4
    with QueryEngine(snapshot, max_batch=1, max_delay_ms=0.0) as engine:
        serial = [engine.query(query, timeout=30) for query in queries]
    assert [result.path for result in serial] == ["serial"] * 4
    for fused_r, serial_r, reference in zip(fused, serial, references):
        assert np.array_equal(fused_r.probs, serial_r.probs)
        assert np.array_equal(serial_r.probs, reference)


# ----------------------------------------------------------------------
# Query engine: micro-batch flush semantics
# ----------------------------------------------------------------------
def test_flush_on_batch_size(snapshot):
    engine = QueryEngine(snapshot, max_batch=4, max_delay_ms=10_000.0)
    try:
        futures = [engine.submit(TransductiveQuery(0, node))
                   for node in range(4)]
        results = [future.result(timeout=30) for future in futures]
    finally:
        engine.close()
    # The deadline was 10s away: only the size trigger can have flushed.
    assert engine.batch_log[0] == {"size": 4, "trigger": "size"}
    assert all(result.trigger == "size" and result.batch_size == 4
               for result in results)


def test_flush_on_deadline(snapshot):
    engine = QueryEngine(snapshot, max_batch=100, max_delay_ms=30.0)
    try:
        futures = [engine.submit(TransductiveQuery(0, node))
                   for node in range(3)]
        results = [future.result(timeout=30) for future in futures]
    finally:
        engine.close()
    # Far below max_batch: every flush must have been deadline-triggered.
    assert all(result.trigger == "deadline" for result in results)
    assert sum(record["size"] for record in engine.batch_log) == 3
    assert all(record["trigger"] == "deadline"
               for record in engine.batch_log)


def test_close_flushes_pending_queries(snapshot):
    engine = QueryEngine(snapshot, max_batch=100, max_delay_ms=10_000.0)
    futures = [engine.submit(TransductiveQuery(0, node))
               for node in range(2)]
    engine.close()
    results = [future.result(timeout=30) for future in futures]
    assert all(result.trigger == "close" for result in results)
    with pytest.raises(RuntimeError, match="closed"):
        engine.submit(TransductiveQuery(0, 0))
    engine.close()   # idempotent


def test_engine_surfaces_bad_queries_without_wedging(snapshot):
    with QueryEngine(snapshot, max_batch=2, max_delay_ms=5.0) as engine:
        bad = engine.submit(TransductiveQuery(0, 10**9))
        good = engine.submit(TransductiveQuery(0, 0))
        with pytest.raises(IndexError):
            bad.result(timeout=30)
        assert good.result(timeout=30).path == "table"
        with pytest.raises(KeyError):
            engine.query(TransductiveQuery(999, 0), timeout=30)


# ----------------------------------------------------------------------
# Subgraph LRU determinism
# ----------------------------------------------------------------------
def test_lru_eviction_is_deterministic():
    cache = SubgraphLRU(capacity=2)
    built = []

    def factory(key):
        def build():
            built.append(key)
            return key
        return build

    assert cache.get("a", factory("a")) == "a"
    assert cache.get("b", factory("b")) == "b"
    assert cache.get("a", factory("a")) == "a"      # refreshes "a"
    assert cache.get("c", factory("c")) == "c"      # evicts "b" (LRU)
    assert cache.keys() == ["a", "c"]
    assert cache.get("b", factory("b")) == "b"      # rebuilt, evicts "a"
    assert cache.keys() == ["c", "b"]
    assert built == ["a", "b", "c", "b"]
    assert (cache.hits, cache.misses, cache.evictions) == (1, 4, 2)


def test_engine_lru_reuses_blocks_and_evicts_in_order(snapshot):
    entry = snapshot.entries[0]
    features = entry.graph.features[0]
    anchor_sets = [(0, 1), (2, 3), (4, 5)]
    with QueryEngine(snapshot, max_batch=1, max_delay_ms=0.0,
                     cache_size=2) as engine:
        for anchors in anchor_sets:                  # 3 misses, 1 eviction
            engine.query(InductiveQuery(0, features, anchors), timeout=30)
        engine.query(InductiveQuery(0, features, anchor_sets[1]),
                     timeout=30)                     # hit
        engine.query(InductiveQuery(0, features, anchor_sets[0]),
                     timeout=30)                     # miss again (evicted)
        assert engine.cache.hits == 1
        assert engine.cache.misses == 4
        assert engine.cache.evictions == 2
        assert engine.cache.keys() == [(0, (2, 3)), (0, (0, 1))]
        # Anchor order must not change the key.
        engine.query(InductiveQuery(0, features, (1, 0)), timeout=30)
        assert engine.cache.hits == 2


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
def test_open_loop_report_accounts_for_every_query(snapshot):
    queries = build_query_mix(snapshot, 40, inductive_fraction=0.25, seed=3)
    assert any(isinstance(query, InductiveQuery) for query in queries)
    with QueryEngine(snapshot, max_batch=8, max_delay_ms=2.0) as engine:
        report = run_open_loop(engine, queries, rate=2000.0, seed=3)
    assert report.queries == 40
    assert sum(report.paths.values()) == 40
    assert report.achieved_qps > 0
    assert report.p50_ms <= report.p99_ms <= report.max_ms
    assert sum(report.triggers.values()) == report.batches


def test_query_mix_is_seed_deterministic(snapshot):
    first = build_query_mix(snapshot, 25, inductive_fraction=0.5, seed=11)
    second = build_query_mix(snapshot, 25, inductive_fraction=0.5, seed=11)
    for a, b in zip(first, second):
        assert type(a) is type(b)
        if isinstance(a, TransductiveQuery):
            assert (a.client_id, a.node_id) == (b.client_id, b.node_id)
        else:
            assert a.client_id == b.client_id
            assert a.anchors == b.anchors
            assert np.array_equal(a.features, b.features)


# ----------------------------------------------------------------------
# Bounded admission queue (overload shedding)
# ----------------------------------------------------------------------
def test_bounded_queue_fast_fails_on_overflow(snapshot):
    # A stalled worker (huge deadline, huge batch) never drains the queue,
    # so the bound is hit by the submissions alone.
    engine = QueryEngine(snapshot, max_batch=100, max_delay_ms=10_000.0,
                         max_queue=3)
    try:
        futures = [engine.submit(TransductiveQuery(0, node))
                   for node in range(3)]
        # The worker thread consumed the first pending item into its batch,
        # freeing one slot; fill whatever capacity remains, then overflow.
        overflowed = 0
        for node in range(3, 10):
            try:
                futures.append(engine.submit(TransductiveQuery(0, node)))
            except AdmissionRejected:
                overflowed += 1
        assert overflowed > 0
        assert engine.rejected == overflowed
    finally:
        engine.close()
    # Every admitted query still completes (close flushes the queue).
    for future in futures:
        assert future.result(timeout=30) is not None


def test_unbounded_queue_never_rejects(snapshot):
    with QueryEngine(snapshot, max_batch=8, max_delay_ms=1.0) as engine:
        futures = [engine.submit(TransductiveQuery(0, node % 5))
                   for node in range(200)]
        for future in futures:
            future.result(timeout=30)
    assert engine.rejected == 0
    assert engine.max_queue == 0


def test_rejections_negative_bound_refused(snapshot):
    with pytest.raises(ValueError, match="max_queue"):
        QueryEngine(snapshot, max_queue=-1)


def test_open_loop_surfaces_rejections(snapshot):
    queries = build_query_mix(snapshot, 60, seed=5)
    engine = QueryEngine(snapshot, max_batch=100, max_delay_ms=50.0,
                         max_queue=4)
    with engine:
        report = run_open_loop(engine, queries, rate=50_000.0, seed=5)
    # At 50k qps offered against a 50 ms flush deadline the bound must shed.
    assert report.rejected > 0
    assert report.rejected == engine.rejected
    assert report.queries == 60 - report.rejected
    assert sum(report.paths.values()) == report.queries
    assert report.rejected in report.as_dict().values()

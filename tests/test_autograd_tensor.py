"""Unit tests for the Tensor type and reverse-mode differentiation."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled


def numerical_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of a numpy array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_construction_casts_dtype(self):
        t = Tensor(np.array([1, 2], dtype=np.int32))
        assert t.data.dtype == np.float64

    def test_requires_grad_flag(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert t.requires_grad

    def test_detach_breaks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.array_equal(d.data, t.data)

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_properties(self):
        t = Tensor(np.ones((2, 3)))
        assert t.ndim == 2
        assert t.size == 6
        assert t.T.shape == (3, 2)

    def test_zeros_ones_eye(self):
        assert np.array_equal(Tensor.zeros((2, 2)).data, np.zeros((2, 2)))
        assert np.array_equal(Tensor.ones((2,)).data, np.ones(2))
        assert np.array_equal(Tensor.eye(3).data, np.eye(3))

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.sum()).backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestArithmeticGradients:
    def test_add_gradient(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_add_scalar(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a + 5.0).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_sub_gradient(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [-1.0, -1.0])

    def test_rsub(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = 10.0 - a
        assert np.allclose(out.data, [9.0, 8.0])
        out.sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_mul_gradient(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0]), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_gradient(self):
        a = Tensor(np.array([6.0]), requires_grad=True)
        b = Tensor(np.array([3.0]), requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [1.0 / 3.0])
        assert np.allclose(b.grad, [-6.0 / 9.0])

    def test_neg(self):
        a = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_pow_gradient(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (a ** 3).sum().backward()
        assert np.allclose(a.grad, [12.0, 27.0])

    def test_matmul_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))

        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()

        num_a = numerical_gradient(lambda x: (x @ b_data).sum(), a_data.copy())
        num_b = numerical_gradient(lambda x: (a_data @ x).sum(), b_data.copy())
        assert np.allclose(a.grad, num_a, atol=1e-5)
        assert np.allclose(b.grad, num_b, atol=1e-5)

    def test_broadcast_add_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        (x + bias).sum().backward()
        assert bias.grad.shape == (3,)
        assert np.allclose(bias.grad, [4.0, 4.0, 4.0])

    def test_broadcast_mul_scalar_tensor(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        assert np.allclose(x.grad, 2.0 * np.ones((2, 3)))
        assert np.allclose(s.grad, 6.0)

    def test_gradient_accumulates_on_reuse(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a * 2 + a * 3
        out.sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_chain_of_operations_numerical(self):
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(5, 3))

        def fn(x):
            return float(np.sum((x @ np.ones((3, 2))) ** 2) / x.size)

        x = Tensor(x_data.copy(), requires_grad=True)
        y = ((x @ Tensor(np.ones((3, 2)))) ** 2).sum() * (1.0 / x_data.size)
        y.backward()
        numerical = numerical_gradient(fn, x_data.copy())
        assert np.allclose(x.grad, numerical, atol=1e-5)


class TestShapingOps:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=0, keepdims=True)
        assert out.shape == (1, 3)
        out.sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3)))

    def test_sum_axis_no_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1)
        assert out.shape == (2,)
        out.sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3)))

    def test_mean(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)
        assert np.allclose(x.grad, np.ones(6))

    def test_transpose_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x.T * Tensor(np.ones((3, 2)))).sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_rows(self):
        x = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = x[np.array([0, 2])]
        assert out.shape == (2, 3)
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[[0, 2]] = 1.0
        assert np.allclose(x.grad, expected)

    def test_getitem_fancy_pairs(self):
        x = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = x[np.array([0, 1]), np.array([2, 0])]
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0, 2] = 1.0
        expected[1, 0] = 1.0
        assert np.allclose(x.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        out = x[np.array([1, 1])]
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 2.0, 0.0])


class TestElementwiseFunctions:
    def test_relu_forward_and_grad(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        out = x.relu()
        assert np.allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 0.0, 1.0])

    def test_exp_log_inverse(self):
        x = Tensor(np.array([0.5, 1.5]), requires_grad=True)
        out = x.exp().log()
        assert np.allclose(out.data, x.data)

    def test_log_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        x.log().sum().backward()
        assert np.allclose(x.grad, [0.5])

    def test_sigmoid_range(self):
        x = Tensor(np.linspace(-10, 10, 7))
        out = x.sigmoid()
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_sigmoid_gradient_at_zero(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        x.sigmoid().sum().backward()
        assert np.allclose(x.grad, [0.25])

    def test_tanh_gradient(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        x.tanh().sum().backward()
        assert np.allclose(x.grad, [1.0])

    def test_clip_gradient_mask(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestGradMode:
    def test_no_grad_disables_graph(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested_exception_safe(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_constants_do_not_track(self):
        a = Tensor(np.ones(2), requires_grad=False)
        out = a * 3 + 1
        assert not out.requires_grad


class TestBatchedMatmul:
    """ndim > 2 matmul: batched operands and broadcast weights."""

    def test_batched_forward_matches_loop(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4, 5))
        b = rng.normal(size=(3, 5, 2))
        out = Tensor(a).matmul(Tensor(b))
        expected = np.stack([a[i] @ b[i] for i in range(3)])
        assert np.allclose(out.data, expected)

    def test_batched_both_grads(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta.matmul(tb) * ta.matmul(tb)).sum().backward()
        expected_a = numerical_gradient(
            lambda x: float(((x @ b) ** 2).sum()), a.copy())
        expected_b = numerical_gradient(
            lambda x: float(((a @ x) ** 2).sum()), b.copy())
        assert np.allclose(ta.grad, expected_a, atol=1e-5)
        assert np.allclose(tb.grad, expected_b, atol=1e-5)

    def test_broadcast_weight_grad_reduces_batch_axis(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 3, 5))
        w = rng.normal(size=(5, 2))
        tw = Tensor(w.copy(), requires_grad=True)
        Tensor(x).matmul(tw).sum().backward()
        assert tw.grad.shape == (5, 2)
        expected = numerical_gradient(lambda v: float((x @ v).sum()), w.copy())
        assert np.allclose(tw.grad, expected, atol=1e-5)

    def test_2d_behaviour_unchanged(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        ta.matmul(tb).sum().backward()
        assert np.allclose(ta.grad, np.ones((3, 2)) @ b.T)
        assert np.allclose(tb.grad, a.T @ np.ones((3, 2)))

"""Tests for the data-simulation strategies: splits, injection, sparsity."""

import numpy as np
import pytest

from repro.graph import edge_homophily
from repro.simulation import (
    community_split,
    edge_sparsity,
    feature_sparsity,
    inject_heterophilous_edges,
    inject_homophilous_edges,
    label_sparsity,
    meta_injection,
    random_injection,
    structure_noniid_split,
)


class TestCommunitySplit:
    def test_covers_all_nodes(self, homophilous_graph):
        clients = community_split(homophilous_graph, 3, seed=0)
        total = sum(c.num_nodes for c in clients)
        assert total == homophilous_graph.num_nodes

    def test_clients_disjoint(self, homophilous_graph):
        clients = community_split(homophilous_graph, 3, seed=0)
        all_ids = np.concatenate([c.metadata["global_ids"] for c in clients])
        assert np.unique(all_ids).size == all_ids.size

    def test_number_of_clients(self, homophilous_graph):
        clients = community_split(homophilous_graph, 4, seed=0)
        assert 1 <= len(clients) <= 4

    def test_preserves_homophily(self, homophilous_graph):
        clients = community_split(homophilous_graph, 3, seed=0)
        global_h = edge_homophily(homophilous_graph.adjacency,
                                  homophilous_graph.labels)
        for client in clients:
            if client.num_edges < 10:
                continue
            local_h = edge_homophily(client.adjacency, client.labels)
            assert local_h > global_h - 0.25

    def test_metadata_labels_split(self, homophilous_graph):
        clients = community_split(homophilous_graph, 3, seed=0)
        assert all(c.metadata["split"] == "community" for c in clients)

    def test_invalid_client_count(self, homophilous_graph):
        with pytest.raises(ValueError):
            community_split(homophilous_graph, 0)


class TestStructureNonIidSplit:
    def test_covers_all_nodes(self, homophilous_graph):
        clients = structure_noniid_split(homophilous_graph, 3, seed=0)
        assert sum(c.num_nodes for c in clients) == homophilous_graph.num_nodes

    def test_topology_variance_larger_than_community(self, homophilous_graph):
        community = community_split(homophilous_graph, 4, seed=0)
        noniid = structure_noniid_split(homophilous_graph, 4, seed=0)

        def spread(clients):
            values = [edge_homophily(c.adjacency, c.labels) for c in clients
                      if c.num_edges > 5]
            return max(values) - min(values) if len(values) > 1 else 0.0

        assert spread(noniid) > spread(community)

    def test_injection_recorded_in_metadata(self, homophilous_graph):
        clients = structure_noniid_split(homophilous_graph, 3, seed=0)
        for client in clients:
            assert client.metadata["split"] == "structure-noniid"
            assert "enhance_homophily" in client.metadata
            assert client.metadata["injection_technique"] == "random"

    def test_meta_injection_mode(self, homophilous_graph):
        clients = structure_noniid_split(homophilous_graph, 3, seed=0,
                                         injection="meta")
        assert all(c.metadata["injection_technique"] == "meta" for c in clients)

    def test_edges_increase(self, homophilous_graph):
        original = structure_noniid_split(homophilous_graph, 3, seed=0)
        base = community_split(homophilous_graph, 3, seed=0)
        assert (sum(c.num_edges for c in original)
                > sum(c.num_edges for c in base) * 0.9)

    def test_invalid_injection_name(self, homophilous_graph):
        with pytest.raises(ValueError):
            structure_noniid_split(homophilous_graph, 3, injection="gradient")

    def test_homophily_probability_one_only_augments(self, homophilous_graph):
        clients = structure_noniid_split(homophilous_graph, 3, seed=0,
                                         homophily_probability=1.0)
        assert all(c.metadata["enhance_homophily"] for c in clients)


class TestInjection:
    def test_homophilous_injection_raises_homophily(self, heterophilous_graph):
        before = edge_homophily(heterophilous_graph.adjacency,
                                heterophilous_graph.labels)
        injected = inject_homophilous_edges(heterophilous_graph,
                                            sampling_ratio=0.5, seed=0)
        after = edge_homophily(injected.adjacency, injected.labels)
        assert after > before

    def test_heterophilous_injection_lowers_homophily(self, homophilous_graph):
        before = edge_homophily(homophilous_graph.adjacency,
                                homophilous_graph.labels)
        injected = inject_heterophilous_edges(homophilous_graph,
                                              sampling_ratio=0.5, seed=0)
        after = edge_homophily(injected.adjacency, injected.labels)
        assert after < before

    def test_injection_adds_edges(self, homophilous_graph):
        injected = inject_homophilous_edges(homophilous_graph, 0.5, seed=0)
        assert injected.num_edges > homophilous_graph.num_edges
        assert injected.metadata["injected_edges"] > 0

    def test_injection_does_not_modify_original(self, homophilous_graph):
        edges_before = homophilous_graph.num_edges
        inject_heterophilous_edges(homophilous_graph, 0.5, seed=0)
        assert homophilous_graph.num_edges == edges_before

    def test_random_injection_dispatch(self, homophilous_graph):
        homo = random_injection(homophilous_graph, True, 0.3, seed=0)
        hetero = random_injection(homophilous_graph, False, 0.3, seed=0)
        assert homo.metadata["injection"] == "homophilous"
        assert hetero.metadata["injection"] == "heterophilous"

    def test_zero_ratio_is_noop(self, homophilous_graph):
        injected = inject_homophilous_edges(homophilous_graph, 0.0, seed=0)
        assert injected.num_edges == homophilous_graph.num_edges

    def test_meta_injection_budget(self, homophilous_graph):
        budget = 0.2
        injected = meta_injection(homophilous_graph, budget=budget, seed=0)
        added = injected.num_edges - homophilous_graph.num_edges
        assert added <= int(round(budget * homophilous_graph.num_edges)) + 1
        assert added > 0

    def test_meta_injection_only_heterophilous_edges(self, homophilous_graph):
        before = edge_homophily(homophilous_graph.adjacency,
                                homophilous_graph.labels)
        injected = meta_injection(homophilous_graph, budget=0.2, seed=0)
        after = edge_homophily(injected.adjacency, injected.labels)
        assert after < before

    def test_meta_injection_zero_budget(self, homophilous_graph):
        injected = meta_injection(homophilous_graph, budget=0.0, seed=0)
        assert injected.num_edges == homophilous_graph.num_edges
        assert injected.metadata["injected_edges"] == 0

    def test_meta_injection_negative_budget_rejected(self, homophilous_graph):
        with pytest.raises(ValueError):
            meta_injection(homophilous_graph, budget=-0.1)

    def test_meta_injection_more_damaging_than_random(self, homophilous_graph):
        """Meta-injection targets low-degree nodes, random does not."""
        meta = meta_injection(homophilous_graph, budget=0.2, seed=0)
        new_meta = meta.num_edges - homophilous_graph.num_edges
        assert new_meta > 0
        # Injected meta edges are all cross-class by construction.
        assert edge_homophily(meta.adjacency, meta.labels) < edge_homophily(
            homophilous_graph.adjacency, homophilous_graph.labels)


class TestSparsity:
    def test_feature_sparsity_zeroes_features(self, homophilous_graph):
        sparse = feature_sparsity(homophilous_graph, 0.5, seed=0)
        zero_rows = np.sum(~sparse.features.any(axis=1))
        assert zero_rows > 0

    def test_feature_sparsity_keeps_training_nodes(self, homophilous_graph):
        sparse = feature_sparsity(homophilous_graph, 1.0, seed=0)
        train_rows = sparse.features[sparse.train_mask]
        assert np.abs(train_rows).sum() > 0

    def test_feature_sparsity_invalid_ratio(self, homophilous_graph):
        with pytest.raises(ValueError):
            feature_sparsity(homophilous_graph, 1.5)

    def test_edge_sparsity_removes_edges(self, homophilous_graph):
        sparse = edge_sparsity(homophilous_graph, 0.5, seed=0)
        assert sparse.num_edges < homophilous_graph.num_edges
        assert sparse.metadata["dropped_edges"] > 0

    def test_edge_sparsity_zero_is_noop(self, homophilous_graph):
        sparse = edge_sparsity(homophilous_graph, 0.0, seed=0)
        assert sparse.num_edges == homophilous_graph.num_edges

    def test_edge_sparsity_full_removes_everything(self, homophilous_graph):
        sparse = edge_sparsity(homophilous_graph, 1.0, seed=0)
        assert sparse.num_edges == 0

    def test_label_sparsity_reduces_training_set(self, homophilous_graph):
        sparse = label_sparsity(homophilous_graph, 0.05, seed=0)
        assert sparse.train_mask.sum() < homophilous_graph.train_mask.sum()
        assert sparse.train_mask.sum() >= 1

    def test_label_sparsity_noop_when_already_sparser(self, homophilous_graph):
        sparse = label_sparsity(homophilous_graph, 1.0, seed=0)
        assert sparse.train_mask.sum() == homophilous_graph.train_mask.sum()

    def test_label_sparsity_invalid(self, homophilous_graph):
        with pytest.raises(ValueError):
            label_sparsity(homophilous_graph, 0.0)

    def test_sparsity_leaves_original_untouched(self, homophilous_graph):
        feature_count = np.abs(homophilous_graph.features).sum()
        feature_sparsity(homophilous_graph, 0.9, seed=0)
        edge_sparsity(homophilous_graph, 0.9, seed=0)
        label_sparsity(homophilous_graph, 0.05, seed=0)
        assert np.abs(homophilous_graph.features).sum() == feature_count

"""Scaling layer: hierarchical edge aggregation, the memory-mapped client
store, per-round subsampling, and the entropy-coded qtopk index transport."""

from __future__ import annotations

import resource

import numpy as np
import pytest

from repro.federated.engine.clientstore import (
    ClientStore,
    ModelSpec,
    StoreFederatedTrainer,
)
from repro.federated.engine.persistent import (
    apply_topk_delta,
    encode_topk_delta,
    pack_indices,
    unpack_indices,
)
from repro.federated.trainer import (
    FederatedConfig,
    participation_rng,
    select_participant_ids,
)
from repro.fgl import FederatedGNN
from tests.conftest import small_csbm

from repro.simulation import community_split


@pytest.fixture(scope="module")
def subgraphs():
    graph = small_csbm(num_nodes=150, homophily=0.85, seed=1)
    return community_split(graph, 4, seed=0)


def _config(**kwargs):
    base = dict(rounds=3, local_epochs=2, seed=7, eval_every=1)
    base.update(kwargs)
    return FederatedConfig(**base)


def _run_flat(subgraphs, **kwargs):
    trainer = FederatedGNN(subgraphs, "gcn", hidden=16,
                           config=_config(**kwargs))
    history = trainer.run()
    return history, trainer.server.global_state


# ----------------------------------------------------------------------
# Participant subsampling
# ----------------------------------------------------------------------
class TestSubsampling:
    def test_partial_fraction_never_selects_everyone(self):
        rng = participation_rng(0)
        # The old ``max(1, round(f * n))`` rounded 0.67 * 3 up to 2 but
        # 0.9 * 3 up to 3 — a participation *below* 1.0 silently became
        # full participation at small N.
        for total in (2, 3, 4, 5, 10):
            for fraction in (0.34, 0.5, 0.67, 0.9, 0.99):
                picked = select_participant_ids(rng, total, fraction)
                assert 1 <= len(picked) < total
                assert picked == sorted(set(picked))

    def test_full_participation_consumes_no_randomness(self):
        rng = participation_rng(3)
        before = rng.bit_generator.state
        assert select_participant_ids(rng, 5, 1.0) == [0, 1, 2, 3, 4]
        assert rng.bit_generator.state == before

    def test_dedicated_stream_keeps_training_rng_parity(self, subgraphs):
        """Changing participation must not perturb model-init/dropout RNG:
        two full-participation runs bracket a subsampled one and still
        match bitwise."""
        h_a, w_a = _run_flat(subgraphs, backend="serial")
        _run_flat(subgraphs, backend="serial", participation=0.5)
        h_b, w_b = _run_flat(subgraphs, backend="serial")
        assert h_a.loss == h_b.loss
        assert all(np.array_equal(w_a[k], w_b[k]) for k in w_a)

    def test_selection_is_deterministic_across_backends(self, subgraphs):
        histories = []
        for backend, extra in (("serial", {}),
                               ("process_pool",
                                {"num_workers": 2,
                                 "intra_worker": "serial"}),
                               ("process_pool",
                                {"num_workers": 2,
                                 "intra_worker": "serial",
                                 "hierarchical": True})):
            history, _ = _run_flat(subgraphs, backend=backend,
                                   participation=0.5, **extra)
            histories.append(history)
        reference = histories[0]
        assert reference.participants
        for round_index, ids in reference.participants.items():
            assert 0 < len(ids) < len(subgraphs)
        for other in histories[1:]:
            assert other.participants == reference.participants
            assert other.loss == reference.loss


# ----------------------------------------------------------------------
# Entropy-coded qtopk index transport
# ----------------------------------------------------------------------
class TestVarintIndices:
    def test_roundtrip_is_exact(self):
        rng = np.random.default_rng(0)
        cases = [
            np.empty(0, dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([12345], dtype=np.int64),
            np.arange(100, dtype=np.int64),
            np.array([5, 1_000_000, 2**40, 2**55], dtype=np.int64),
            np.sort(rng.choice(1 << 20, size=513,
                               replace=False)).astype(np.int64),
        ]
        for indices in cases:
            packed = pack_indices(indices)
            assert packed.dtype == np.uint8
            assert np.array_equal(unpack_indices(packed, indices.size),
                                  indices)

    def test_packed_stream_beats_raw_int64(self):
        rng = np.random.default_rng(1)
        indices = np.sort(rng.choice(1 << 16, size=1024,
                                     replace=False)).astype(np.int64)
        packed = pack_indices(indices)
        # Dense sorted top-k gaps fit in 1-2 varint bytes vs 8 raw bytes.
        assert packed.nbytes < indices.nbytes // 4

    def test_qtopk_payload_applies_identically_to_legacy(self):
        rng = np.random.default_rng(2)
        received = {"w": rng.normal(size=(32, 32))}
        trained = {"w": received["w"] + rng.normal(size=(32, 32))}
        payload, residual, transported = encode_topk_delta(
            trained, received, top_k=64, bits=8)
        indices, values, shape = payload["w"]
        assert indices.dtype == np.uint8
        legacy_payload = {
            "w": (unpack_indices(indices, len(values)), values, shape)}
        applied = apply_topk_delta(received, payload)
        legacy = apply_topk_delta(received, legacy_payload)
        assert np.array_equal(applied["w"], legacy["w"])
        assert set(residual) == {"w"}
        # Cheaper than shipping 64 raw int64 indices alongside the values.
        assert transported < 64 + (64 * 8) // 64 + 1


# ----------------------------------------------------------------------
# Hierarchical (edge-aggregated) rounds
# ----------------------------------------------------------------------
class TestHierarchical:
    def test_matches_flat_fedavg_bitwise(self, subgraphs):
        h_flat, w_flat = _run_flat(subgraphs, backend="process_pool",
                                   num_workers=2, intra_worker="serial")
        h_hier, w_hier = _run_flat(subgraphs, backend="process_pool",
                                   num_workers=2, intra_worker="serial",
                                   hierarchical=True)
        loss_gap = max(abs(a - b) for a, b in zip(h_flat.loss, h_hier.loss))
        assert loss_gap == 0.0
        assert h_flat.test_accuracy == h_hier.test_accuracy
        assert all(np.array_equal(w_flat[k], w_hier[k]) for k in w_flat)

    def test_uplink_is_per_worker_not_per_client(self, subgraphs):
        trainer = FederatedGNN(subgraphs, "gcn", hidden=16,
                               config=_config(backend="process_pool",
                                              num_workers=2,
                                              intra_worker="serial",
                                              hierarchical=True))
        trainer.run()
        uploads = trainer.tracker.uploaded
        # One edge-aggregate record per worker shard per round; no
        # per-client model_parameters uploads at all.
        assert uploads.get("model_parameters", 0.0) == 0.0
        assert uploads["edge_aggregate"] > 0

    def test_requires_process_pool(self, subgraphs):
        with pytest.raises(ValueError, match="process_pool"):
            FederatedGNN(subgraphs, "gcn", hidden=16,
                         config=_config(backend="serial",
                                        hierarchical=True))

    def test_requires_sync_rounds(self, subgraphs):
        trainer = FederatedGNN(
            subgraphs, "gcn", hidden=16,
            config=_config(backend="process_pool", num_workers=2,
                           hierarchical=True, round_mode="async"))
        with pytest.raises(ValueError, match="sync"):
            trainer.run()

    def test_requires_lossless_codec(self, subgraphs):
        with pytest.raises(ValueError, match="bitdelta"):
            FederatedGNN(subgraphs, "gcn", hidden=16,
                         config=_config(backend="process_pool",
                                        num_workers=2, hierarchical=True,
                                        delta_codec="qtopk"))


# ----------------------------------------------------------------------
# Memory-mapped client store
# ----------------------------------------------------------------------
class TestClientStore:
    @pytest.fixture()
    def store(self, subgraphs, tmp_path):
        spec = ModelSpec(model_name="gcn", hidden=16, dropout=0.5, seed=7)
        return ClientStore.create(str(tmp_path / "store"),
                                  (graph for graph in subgraphs), spec)

    def test_graph_roundtrip_is_bitwise(self, subgraphs, store):
        reopened = ClientStore.open(store.path)
        assert reopened.num_clients == len(subgraphs)
        for cid, original in enumerate(subgraphs):
            rebuilt = reopened.graph(cid)
            assert np.array_equal(rebuilt.features, original.features)
            assert np.array_equal(rebuilt.labels, original.labels)
            assert np.array_equal(rebuilt.train_mask, original.train_mask)
            assert np.array_equal(rebuilt.val_mask, original.val_mask)
            assert np.array_equal(rebuilt.test_mask, original.test_mask)
            assert (rebuilt.adjacency != original.adjacency).nnz == 0
            assert rebuilt.num_classes == original.num_classes

    def test_mutable_state_roundtrip_is_bitwise(self, store):
        client = store.materialize(0, local_epochs=2)
        client.local_train()
        store.save_mutable(client)
        store.flush()

        resumed = ClientStore.open(store.path).materialize(0, local_epochs=2)
        for key, value in client.get_weights().items():
            assert np.array_equal(resumed.get_weights()[key], value)
        assert resumed.optimizer._step_count == client.optimizer._step_count
        for mine, theirs in zip(client.optimizer._m, resumed.optimizer._m):
            assert np.array_equal(mine, theirs)
        for mine, theirs in zip(client.optimizer._v, resumed.optimizer._v):
            assert np.array_equal(mine, theirs)
        from repro.federated.engine.backends import _module_rngs

        for mine, theirs in zip(_module_rngs(client.model),
                                _module_rngs(resumed.model)):
            assert mine.bit_generator.state == theirs.bit_generator.state
        # Resumed streams continue identically.
        assert resumed.local_train() == client.local_train()

    def test_materialization_is_zero_copy(self, store):
        client = store.materialize(1)
        # Immutable tensors are views into the memory-mapped arenas, not
        # copies — materializing a client pages in only what it touches.
        assert np.shares_memory(client.graph.features, store._features)
        assert np.shares_memory(client.graph.labels, store._labels)

    def test_untrained_store_is_sparse_and_open_is_lazy(self, subgraphs,
                                                        tmp_path):
        """A big untrained federation costs graph bytes only, and opening
        plus materializing one client must not page the whole arena in."""
        spec = ModelSpec(model_name="gcn", hidden=16, dropout=0.5, seed=7)

        def many(copies=400):
            for _ in range(copies):
                for graph in subgraphs:
                    yield graph

        store = ClientStore.create(str(tmp_path / "big"), many(), spec)
        assert store.num_clients == 400 * len(subgraphs)
        arena_bytes = store._features.nbytes + store._mutable.nbytes
        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        reopened = ClientStore.open(store.path)
        client = reopened.materialize(0, local_epochs=1)
        client.local_train()
        after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        # Touching one client must cost far less than the mapped arenas
        # (generous 50% margin: ru_maxrss is high-water and noisy).
        assert after - before < max(1, arena_bytes // 2)

    def test_store_trainer_matches_flat_serial(self, subgraphs, store):
        h_flat, w_flat = _run_flat(subgraphs, backend="serial")
        trainer = StoreFederatedTrainer(store, rounds=3, local_epochs=2,
                                        seed=7, num_workers=0)
        h_store = trainer.run()
        loss_gap = max(abs(a - b)
                       for a, b in zip(h_flat.loss, h_store.loss))
        assert loss_gap == 0.0
        assert h_flat.test_accuracy == h_store.test_accuracy
        assert h_flat.train_accuracy == h_store.train_accuracy
        assert all(np.array_equal(w_flat[k], trainer.global_state[k])
                   for k in w_flat)

    def test_store_trainer_pool_matches_in_process(self, subgraphs,
                                                   tmp_path):
        spec = ModelSpec(model_name="gcn", hidden=16, dropout=0.5, seed=7)

        def run(name, workers):
            store = ClientStore.create(str(tmp_path / name),
                                       (graph for graph in subgraphs), spec)
            trainer = StoreFederatedTrainer(store, rounds=3, local_epochs=2,
                                            seed=7, participation=0.5,
                                            num_workers=workers)
            return trainer.run()

        serial = run("serial", 0)
        pooled = run("pooled", 2)
        assert serial.participants == pooled.participants
        assert serial.loss == pooled.loss
        assert serial.test_accuracy == pooled.test_accuracy

"""Tests for the AdaFGL core: knowledge extractor, HCS, modules, trainer."""

import dataclasses

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    AdaFGL,
    AdaFGLClientModel,
    AdaFGLConfig,
    FederatedKnowledgeExtractor,
    ablation_variants,
    homophily_confidence_score,
    label_propagation,
    optimized_propagation_matrix,
)
from repro.core.adafgl import PersonalizedClient
from repro.core.modules import LearnableMessagePassing, MessageUpdater
from repro.autograd import Tensor
from repro.federated import FederatedConfig


FAST_CONFIG = AdaFGLConfig(rounds=3, local_epochs=2, hidden=16,
                           personalized_epochs=10, k_prop=2,
                           message_layers=1, seed=0)


class TestOptimizedPropagation:
    def test_shape_and_row_normalisation(self, tiny_graph):
        probs = np.full((tiny_graph.num_nodes, tiny_graph.num_classes),
                        1.0 / tiny_graph.num_classes)
        matrix = optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                              alpha=0.5)
        assert matrix.shape == (tiny_graph.num_nodes, tiny_graph.num_nodes)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= 0)

    def test_alpha_one_keeps_topology_only(self, tiny_graph):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(tiny_graph.num_classes),
                              size=tiny_graph.num_nodes)
        topo_only = optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                                 alpha=1.0)
        dense_adj = tiny_graph.adjacency.toarray()
        # Entries where there is no edge (and no self-loop) must stay ~0.
        off = (dense_adj == 0) & ~np.eye(tiny_graph.num_nodes, dtype=bool)
        assert np.abs(topo_only[off]).max() < 1e-6

    def test_alpha_zero_uses_prediction_similarity(self, tiny_graph):
        onehot = np.zeros((tiny_graph.num_nodes, tiny_graph.num_classes))
        onehot[np.arange(tiny_graph.num_nodes), tiny_graph.labels] = 1.0
        matrix = optimized_propagation_matrix(tiny_graph.adjacency, onehot,
                                              alpha=0.0)
        # With perfect one-hot predictions, same-label pairs get positive
        # weight and different-label pairs get none.
        i, j = 0, int(np.nonzero(tiny_graph.labels
                                 != tiny_graph.labels[0])[0][0])
        assert matrix[i, j] < 1e-6

    def test_invalid_alpha(self, tiny_graph):
        probs = np.ones((tiny_graph.num_nodes, tiny_graph.num_classes))
        with pytest.raises(ValueError):
            optimized_propagation_matrix(tiny_graph.adjacency, probs, alpha=2.0)

    def test_shape_mismatch_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            optimized_propagation_matrix(tiny_graph.adjacency,
                                         np.ones((3, 2)), alpha=0.5)


class TestLabelPropagationAndHCS:
    def test_lp_output_is_distribution(self, homophilous_graph):
        beliefs = label_propagation(homophilous_graph.adjacency,
                                    homophilous_graph.labels,
                                    homophilous_graph.train_mask,
                                    homophilous_graph.num_classes, k=4)
        assert beliefs.shape == (homophilous_graph.num_nodes,
                                 homophilous_graph.num_classes)
        assert np.all(beliefs >= -1e-9)

    def test_lp_respects_labeled_nodes(self, homophilous_graph):
        beliefs = label_propagation(homophilous_graph.adjacency,
                                    homophilous_graph.labels,
                                    homophilous_graph.train_mask,
                                    homophilous_graph.num_classes, k=3)
        idx = homophilous_graph.train_indices()
        assert np.all(beliefs[idx].argmax(axis=1)
                      == homophilous_graph.labels[idx])

    def test_lp_invalid_parameters(self, tiny_graph):
        with pytest.raises(ValueError):
            label_propagation(tiny_graph.adjacency, tiny_graph.labels,
                              tiny_graph.train_mask, tiny_graph.num_classes,
                              k=0)
        with pytest.raises(ValueError):
            label_propagation(tiny_graph.adjacency, tiny_graph.labels,
                              tiny_graph.train_mask, tiny_graph.num_classes,
                              kappa=2.0)

    def test_hcs_higher_on_homophilous_graph(self, homophilous_graph,
                                             heterophilous_graph):
        high = homophily_confidence_score(homophilous_graph, seed=0)
        low = homophily_confidence_score(heterophilous_graph, seed=0)
        assert high > low

    def test_hcs_in_unit_interval(self, homophilous_graph):
        score = homophily_confidence_score(homophilous_graph, seed=1)
        assert 0.0 <= score <= 1.0

    def test_hcs_invalid_mask_probability(self, homophilous_graph):
        with pytest.raises(ValueError):
            homophily_confidence_score(homophilous_graph, mask_probability=0.0)

    def test_hcs_return_beliefs(self, homophilous_graph):
        score, beliefs = homophily_confidence_score(homophilous_graph,
                                                    return_beliefs=True)
        assert beliefs.shape[0] == homophilous_graph.num_nodes
        assert 0.0 <= score <= 1.0


class TestModules:
    def test_message_updater_shapes(self, tiny_graph):
        updater = MessageUpdater(tiny_graph.num_features, 8,
                                 tiny_graph.num_classes, k=2)
        blocks = [Tensor(tiny_graph.features), Tensor(tiny_graph.features)]
        out = updater(blocks)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_message_updater_wrong_block_count(self, tiny_graph):
        updater = MessageUpdater(tiny_graph.num_features, 8,
                                 tiny_graph.num_classes, k=2)
        with pytest.raises(ValueError):
            updater([Tensor(tiny_graph.features)])

    def test_learnable_message_passing_shapes(self, tiny_graph):
        n, c = tiny_graph.num_nodes, tiny_graph.num_classes
        module = LearnableMessagePassing(c, num_layers=2)
        knowledge = Tensor(np.random.default_rng(0).normal(size=(n, c)))
        prop = np.eye(n)
        out = module(knowledge, prop)
        assert out.shape == (n, c)
        assert np.all(np.isfinite(out.data))

    def test_client_model_outputs(self, tiny_graph):
        model = AdaFGLClientModel(tiny_graph.num_features, 8,
                                  tiny_graph.num_classes, k_prop=2,
                                  message_layers=1)
        probs = np.full((tiny_graph.num_nodes, tiny_graph.num_classes),
                        1.0 / tiny_graph.num_classes)
        prop = np.eye(tiny_graph.num_nodes)
        outputs = model(tiny_graph.features, prop, probs, hcs=0.6)
        for key in ("knowledge", "homophilous", "heterophilous", "combined"):
            assert outputs[key].shape == (tiny_graph.num_nodes,
                                          tiny_graph.num_classes)
        combined = outputs["combined"].data
        assert np.allclose(combined.sum(axis=1), 1.0, atol=1e-6)

    def test_client_model_ablation_flags(self, tiny_graph):
        model = AdaFGLClientModel(tiny_graph.num_features, 8,
                                  tiny_graph.num_classes, k_prop=2,
                                  use_topology_independent=False,
                                  use_learnable_message=False)
        names = [name for name, _ in model.named_parameters()]
        assert not any("feature_mlp" in n for n in names)
        assert not any("message_passing" in n for n in names)


class TestKnowledgeExtractor:
    def test_runs_and_produces_probabilities(self, community_clients):
        extractor = FederatedKnowledgeExtractor(
            community_clients, hidden=16,
            config=FederatedConfig(rounds=3, local_epochs=2, seed=0))
        extractor.run()
        probs = extractor.client_probabilities()
        assert len(probs) == len(community_clients)
        for p, graph in zip(probs, extractor.client_graphs()):
            assert p.shape == (graph.num_nodes, graph.num_classes)

    def test_optimized_matrices_shapes(self, community_clients):
        extractor = FederatedKnowledgeExtractor(
            community_clients, hidden=16,
            config=FederatedConfig(rounds=2, local_epochs=1, seed=0))
        extractor.run()
        matrices = extractor.optimized_matrices(alpha=0.6)
        for matrix, graph in zip(matrices, extractor.client_graphs()):
            assert matrix.shape == (graph.num_nodes, graph.num_nodes)


class TestAdaFGLTrainer:
    def test_requires_clients(self):
        with pytest.raises(ValueError):
            AdaFGL([], FAST_CONFIG)

    def test_step2_before_step1_raises(self, community_clients):
        method = AdaFGL(community_clients, FAST_CONFIG)
        with pytest.raises(RuntimeError):
            method.run_step2()

    def test_full_run_improves_over_untrained(self, community_clients):
        method = AdaFGL(community_clients, FAST_CONFIG)
        initial = method.evaluate("test")
        method.run()
        assert method.evaluate("test") > initial

    def test_history_and_hcs_available(self, noniid_clients):
        method = AdaFGL(noniid_clients, FAST_CONFIG)
        method.run()
        assert len(method.history.rounds) > 0
        hcs = method.client_hcs()
        assert len(hcs) == len(noniid_clients)
        assert all(0.0 <= v <= 1.0 for v in hcs.values())

    def test_client_reports(self, noniid_clients):
        method = AdaFGL(noniid_clients, FAST_CONFIG)
        method.run()
        reports = method.client_reports()
        assert len(reports) == len(noniid_clients)
        assert all(0.0 <= r.accuracy <= 1.0 for r in reports)

    def test_client_hcs_before_step2_raises(self, community_clients):
        method = AdaFGL(community_clients, FAST_CONFIG)
        with pytest.raises(RuntimeError):
            method.client_hcs()

    def test_hcs_tracks_local_topology(self, homophilous_graph,
                                       heterophilous_graph):
        """Personalized clients on homophilous subgraphs get higher HCS."""
        config = dataclasses.replace(FAST_CONFIG)
        probs_h = np.full((homophilous_graph.num_nodes,
                           homophilous_graph.num_classes),
                          1.0 / homophilous_graph.num_classes)
        probs_he = np.full((heterophilous_graph.num_nodes,
                            heterophilous_graph.num_classes),
                           1.0 / heterophilous_graph.num_classes)
        client_h = PersonalizedClient(0, homophilous_graph, probs_h, config)
        client_he = PersonalizedClient(1, heterophilous_graph, probs_he, config)
        assert client_h.hcs > client_he.hcs

    def test_no_hcs_flag_uses_fixed_mixture(self, homophilous_graph):
        config = dataclasses.replace(FAST_CONFIG, use_hcs=False)
        probs = np.full((homophilous_graph.num_nodes,
                         homophilous_graph.num_classes),
                        1.0 / homophilous_graph.num_classes)
        client = PersonalizedClient(0, homophilous_graph, probs, config)
        assert client.hcs == 0.5

    def test_sparse_engine_full_run(self, community_clients):
        config = dataclasses.replace(FAST_CONFIG, sparse_propagation=True,
                                     propagation_top_k=16)
        method = AdaFGL(community_clients, config)
        initial = method.evaluate("test")
        method.run()
        assert method.evaluate("test") > initial
        for client in method.personalized:
            assert sp.issparse(client.propagation)

    def test_parallel_step2_matches_serial(self, community_clients):
        """num_workers > 1 reproduces the serial history exactly."""
        serial = AdaFGL(community_clients, FAST_CONFIG)
        serial.run()
        parallel_config = dataclasses.replace(FAST_CONFIG, num_workers=2)
        parallel = AdaFGL(community_clients, parallel_config)
        parallel.run()
        assert parallel.history.rounds == serial.history.rounds
        assert np.allclose(parallel.history.test_accuracy,
                           serial.history.test_accuracy)
        assert np.allclose(parallel.history.train_accuracy,
                           serial.history.train_accuracy)
        assert np.allclose(parallel.history.loss, serial.history.loss)
        assert len(parallel.personalized) == len(community_clients)
        assert parallel.evaluate("test") == pytest.approx(
            serial.evaluate("test"))

    def test_parallel_step2_reports_identical(self, community_clients):
        """Persistent-pool Step 2 is *bitwise* the serial Step 2.

        Step 1 is pinned serial on both sides so the comparison isolates the
        Step-2 execution path: per-client reports, HCS and the recorded
        history must be identical, not merely close.
        """
        serial = AdaFGL(community_clients, FAST_CONFIG)
        serial.run()
        pooled = AdaFGL(community_clients, dataclasses.replace(
            FAST_CONFIG, num_workers=2, step1_backend="serial"))
        pooled.run()
        for ours, theirs in zip(serial.client_reports(),
                                pooled.client_reports()):
            assert ours.client_id == theirs.client_id
            assert ours.accuracy == theirs.accuracy
            assert ours.num_test_nodes == theirs.num_test_nodes
            assert ours.homophily == theirs.homophily
        assert serial.client_hcs() == pooled.client_hcs()
        np.testing.assert_array_equal(serial.history.loss,
                                      pooled.history.loss)
        np.testing.assert_array_equal(serial.history.test_accuracy,
                                      pooled.history.test_accuracy)

    def test_step2_reuses_step1_worker_residents(self, community_clients):
        """Shared-pool Step 2 (worker-resident graphs) matches serial too."""
        serial = AdaFGL(community_clients, FAST_CONFIG)
        serial.run()
        shared = AdaFGL(community_clients, dataclasses.replace(
            FAST_CONFIG, num_workers=2, intra_worker="serial"))
        backend = shared.extractor.trainer.backend
        shared.run()
        from repro.federated import ProcessPoolBackend
        assert isinstance(backend, ProcessPoolBackend)
        for ours, theirs in zip(serial.client_reports(),
                                shared.client_reports()):
            assert ours.accuracy == theirs.accuracy
        np.testing.assert_array_equal(serial.history.loss,
                                      shared.history.loss)
        # Pipeline end released the shared pool (no leaked workers).
        assert backend._pool is None

    def test_context_manager_keeps_pool_until_exit(self, community_clients):
        config = dataclasses.replace(FAST_CONFIG, num_workers=2,
                                     intra_worker="serial")
        with AdaFGL(community_clients, config) as method:
            method.run_step1()
            backend = method.extractor.trainer.backend
            assert backend._pool is not None and not backend._pool.closed
            method.run_step2()
            # Still alive inside the context (e.g. for another step-2 pass).
            assert backend._pool is not None and not backend._pool.closed
        assert backend._pool is None

    def test_no_local_topology_uses_normalised_adjacency(self, tiny_graph):
        config = dataclasses.replace(FAST_CONFIG, use_local_topology=False)
        probs = np.full((tiny_graph.num_nodes, tiny_graph.num_classes),
                        1.0 / tiny_graph.num_classes)
        client = PersonalizedClient(0, tiny_graph, probs, config)
        dense = tiny_graph.adjacency.toarray()
        off = (dense == 0) & ~np.eye(tiny_graph.num_nodes, dtype=bool)
        assert np.abs(client.propagation[off]).max() < 1e-9


class TestTopKResolution:
    """Precedence of the Eq. 5 sparsity knob: explicit > registry > 32."""

    def test_explicit_config_beats_registry_default(self):
        from repro.core import resolve_propagation_top_k
        from repro.datasets import load_dataset
        graph = load_dataset("cora", seed=0, num_nodes=150)
        assert graph.metadata["propagation_top_k"] == 8
        explicit = dataclasses.replace(FAST_CONFIG, propagation_top_k=5)
        assert resolve_propagation_top_k(explicit, graph) == 5
        exact = dataclasses.replace(FAST_CONFIG, propagation_top_k=None)
        assert resolve_propagation_top_k(exact, graph) is None

    def test_auto_reads_registry_then_falls_back(self, tiny_graph):
        from repro.core import (DEFAULT_PROPAGATION_TOP_K,
                                resolve_propagation_top_k)
        from repro.datasets import load_dataset
        auto = dataclasses.replace(FAST_CONFIG, propagation_top_k="auto")
        graph = load_dataset("chameleon", seed=0, num_nodes=150)
        assert resolve_propagation_top_k(auto, graph) == 32
        # cSBM fixtures carry no registry default → global fallback.
        assert resolve_propagation_top_k(auto, tiny_graph) == \
            DEFAULT_PROPAGATION_TOP_K
        assert resolve_propagation_top_k(auto, None) == \
            DEFAULT_PROPAGATION_TOP_K

    def test_invalid_sentinel_raises(self, tiny_graph):
        from repro.core import resolve_propagation_top_k
        bad = dataclasses.replace(FAST_CONFIG, propagation_top_k="dense")
        with pytest.raises(ValueError):
            resolve_propagation_top_k(bad, tiny_graph)

    def test_registry_default_shapes_the_built_matrix(self, homophilous_graph):
        """The resolved k actually controls P̃'s sparsity on the client."""
        import copy
        graph = copy.deepcopy(homophilous_graph)
        graph.metadata["propagation_top_k"] = 4
        probs = np.full((graph.num_nodes, graph.num_classes),
                        1.0 / graph.num_classes)
        config = dataclasses.replace(FAST_CONFIG, sparse_propagation=True,
                                     propagation_top_k="auto")
        auto_client = PersonalizedClient(0, graph, probs, config)
        explicit = dataclasses.replace(config, propagation_top_k=64)
        wide_client = PersonalizedClient(0, graph, probs, explicit)
        assert auto_client.propagation.nnz < wide_client.propagation.nnz


class TestAblationVariants:
    def test_variants_cover_all_components(self):
        variants = ablation_variants(FAST_CONFIG)
        assert set(variants) == {"w/o K.P.", "w/o T.F.", "w/o L.M.",
                                 "w/o L.T.", "w/o HCS", "AdaFGL"}

    def test_each_variant_disables_one_flag(self):
        variants = ablation_variants(FAST_CONFIG)
        assert not variants["w/o K.P."].use_knowledge_preserving
        assert not variants["w/o T.F."].use_topology_independent
        assert not variants["w/o L.M."].use_learnable_message
        assert not variants["w/o L.T."].use_local_topology
        assert not variants["w/o HCS"].use_hcs

    def test_full_variant_unchanged(self):
        variants = ablation_variants(FAST_CONFIG)
        full = variants["AdaFGL"]
        assert full.use_knowledge_preserving and full.use_hcs

    def test_base_config_not_mutated(self):
        base = dataclasses.replace(FAST_CONFIG)
        ablation_variants(base)
        assert base.use_knowledge_preserving

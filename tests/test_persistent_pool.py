"""Tests for the persistent-worker execution engine.

Covers the delta-only communication codec, worker residency (bootstrap,
eviction of ``extra_loss`` clients, final optimizer/RNG sync), the
context-manager lifecycle of trainers, and exact serial-history
reconstruction in every fallback configuration.
"""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.federated import FederatedConfig, ProcessPoolBackend
from repro.federated.engine import (
    PersistentWorkerPool,
    WorkerError,
    apply_state_delta,
    encode_state_delta,
)
from repro.fgl.fedgnn import FederatedGNN


def _config(backend="process_pool", rounds=3, **kwargs):
    defaults = dict(rounds=rounds, local_epochs=2, lr=0.02, seed=0,
                    backend=backend,
                    num_workers=2 if backend == "process_pool" else 0)
    defaults.update(kwargs)
    return FederatedConfig(**defaults)


def _assert_history_equal(a, b, exact=True):
    """Histories must match serial: bitwise for serial intra-worker mode,
    at the batched engine's equivalence tolerance when shards are fused."""
    assert a.rounds == b.rounds
    if exact:
        np.testing.assert_array_equal(a.loss, b.loss)
        np.testing.assert_array_equal(a.test_accuracy, b.test_accuracy)
        np.testing.assert_array_equal(a.train_accuracy, b.train_accuracy)
    else:
        np.testing.assert_allclose(a.loss, b.loss, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(a.test_accuracy, b.test_accuracy,
                                   atol=1e-12)
        np.testing.assert_allclose(a.train_accuracy, b.train_accuracy,
                                   atol=1e-12)


class TestDeltaCodec:
    def test_bit_pattern_roundtrip_is_lossless(self, rng):
        # Include magnitudes a float delta would mangle: the reconstruction
        # received + (trained - received) rounds, the bit delta must not.
        received = {"w": rng.normal(size=(16, 8)),
                    "b": np.array([1e300, 1e-300, -0.0, 0.0, 3.14])}
        trained = {"w": received["w"] + rng.normal(size=(16, 8)) * 1e-13,
                   "b": received["b"] * (1.0 + 1e-16) + 1e-320}
        delta = encode_state_delta(trained, received)
        rebuilt = apply_state_delta(received, delta)
        for key in trained:
            assert np.array_equal(
                trained[key].view(np.uint64), rebuilt[key].view(np.uint64))

    def test_float_delta_would_not_be_lossless(self):
        # Sanity check of the motivation: the naive float reconstruction
        # ``received + (trained - received)`` loses low bits exactly where
        # the bit codec does not (pair found by exhaustive search).
        received = np.array([0.1257302210933933])
        trained = np.array([-0.1321048632913019])
        naive = received + (trained - received)
        assert naive[0] != trained[0]
        delta = encode_state_delta({"w": trained}, {"w": received})
        assert apply_state_delta({"w": received}, delta)["w"][0] == trained[0]


class TestWorkerPool:
    def test_worker_error_carries_traceback(self):
        pool = PersistentWorkerPool(1)
        try:
            with pytest.raises(WorkerError, match="unknown worker command"):
                pool.call(0, "definitely-not-a-command", None)
            # The worker survives a failed command.
            assert pool.call(0, "fetch_all", None) == {}
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = PersistentWorkerPool(1)
        pool.shutdown()
        assert pool.closed
        pool.shutdown()

    def test_failed_command_poisons_pool(self):
        pool = PersistentWorkerPool(2)
        try:
            pool.send(1, "fetch_all", None)  # reply left queued on worker 1
            with pytest.raises(WorkerError):
                pool.call(0, "bogus-command", None)
            # Strict request→reply pairing can no longer be trusted.
            assert pool.poisoned
        finally:
            pool.shutdown()

    def test_run_batches_pumps_one_command_per_worker(self):
        pool = PersistentWorkerPool(2)
        try:
            batches = {0: [("fetch_all", None)] * 3,
                       1: [("fetch_all", None)]}
            results = pool.run_batches(batches)
            assert results == {0: [{}, {}, {}], 1: [{}]}
        finally:
            pool.shutdown()


class TestResidency:
    def test_clients_are_shipped_once(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config(rounds=3))
        with trainer:
            trainer.run()
            transport = trainer.backend.transport
            bootstrap = transport.downloaded["bootstrap_payload"]
            assert bootstrap > 0
            # Per-round traffic carries only weights down and deltas up.
            num_params = trainer.clients[0].model.num_parameters()
            assert transport.uploaded["parameter_delta"] == \
                3 * len(trainer.clients) * num_params
            # All participants hold the identical broadcast state, so the
            # dedup ships one state per worker per round, not one per client.
            workers_used = len({trainer.backend.owner_of(c.client_id)
                                for c in trainer.clients})
            assert transport.downloaded["broadcast_weights"] == \
                3 * workers_used * num_params

    def test_sharding_is_deterministic(self, community_clients):
        owners = []
        for _ in range(2):
            trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                                   config=_config(rounds=1))
            with trainer:
                trainer.run()
                owners.append({c.client_id:
                               trainer.backend.owner_of(c.client_id)
                               for c in trainer.clients})
        assert owners[0] == owners[1]

    @pytest.mark.parametrize("intra_worker", ["serial", "batched", "auto"])
    def test_intra_worker_modes_match_serial(self, intra_worker,
                                             community_clients):
        serial = FederatedGNN(community_clients, "gcn", hidden=16,
                              config=_config("serial"))
        serial_history = serial.run()
        pooled = FederatedGNN(community_clients, "gcn", hidden=16,
                              config=_config(intra_worker=intra_worker))
        pooled_history = pooled.run()
        _assert_history_equal(serial_history, pooled_history,
                              exact=intra_worker == "serial")

    def test_optimizer_and_rng_synced_at_close(self, community_clients):
        """Run → close → run again must continue exactly like serial."""
        serial = FederatedGNN(community_clients, "gcn", hidden=16,
                              config=_config("serial", rounds=2,
                                             intra_worker="serial"))
        pooled = FederatedGNN(community_clients, "gcn", hidden=16,
                              config=_config(rounds=2,
                                             intra_worker="serial"))
        serial.run()
        pooled.run()  # closes the pool and pulls moments/RNG into mirrors
        for a, b in zip(serial.clients, pooled.clients):
            assert a.optimizer._step_count == b.optimizer._step_count
            for m1, m2 in zip(a.optimizer._m, b.optimizer._m):
                np.testing.assert_array_equal(m1, m2)
        # Second run: the pool respawns and re-bootstraps from the synced
        # mirrors; histories must stay bitwise identical to serial.
        _assert_history_equal(serial.run(), pooled.run())


class TestExtraLossFallback:
    """Clients with non-picklable hooks train in-process, exactly."""

    @staticmethod
    def _hook(scale):
        # A closure: not picklable, like FedGL's pseudo-label term.
        return lambda client, logits: F.softmax(logits, axis=-1).sum() \
            * 0.0 + scale * 0.0001

    def _build(self, clients, backend, hooked, **kwargs):
        # intra_worker="serial" keeps the worker path bitwise-serial, so the
        # comparison isolates the in-process fallback machinery itself.
        trainer = FederatedGNN(clients, "gcn", hidden=16,
                               config=_config(backend, intra_worker="serial",
                                              **kwargs))
        for cid in hooked:
            trainer.clients[cid].extra_loss = self._hook(cid + 1)
        return trainer

    def test_mixed_residency_matches_serial(self, community_clients):
        serial = self._build(community_clients, "serial", hooked=[1])
        serial_history = serial.run()
        pooled = self._build(community_clients, "process_pool", hooked=[1])
        pooled_history = pooled.run()
        _assert_history_equal(serial_history, pooled_history)
        for a, b in zip(serial.clients, pooled.clients):
            for key, value in a.get_weights().items():
                np.testing.assert_array_equal(value, b.get_weights()[key])

    def test_all_hooked_clients_match_serial(self, community_clients):
        serial = self._build(community_clients, "serial", hooked=[0, 1, 2])
        pooled = self._build(community_clients, "process_pool",
                             hooked=[0, 1, 2])
        _assert_history_equal(serial.run(), pooled.run())

    def test_midrun_hook_evicts_resident_client(self, community_clients):
        """A hook appearing mid-run pulls the client back in-process."""
        def attach_midrun(trainer):
            original = trainer.before_round

            def hooked(round_index, participants):
                original(round_index, participants)
                if round_index == 2:
                    trainer.clients[0].extra_loss = self._hook(7)
            trainer.before_round = hooked
            return trainer

        serial = attach_midrun(self._build(community_clients, "serial", []))
        serial_history = serial.run()
        pooled = attach_midrun(
            self._build(community_clients, "process_pool", []))
        backend = pooled.backend
        evicted_at = []

        def record(round_index, participants):
            if 0 in backend._local:
                evicted_at.append(round_index)
        pooled.after_round = record
        pooled_history = pooled.run()
        _assert_history_equal(serial_history, pooled_history)
        # The client was resident in round 1 and evicted from round 2 on.
        assert evicted_at == [2, 3]


class TestContextManager:
    def test_with_block_keeps_pool_across_runs(self, community_clients):
        with FederatedGNN(community_clients, "gcn", hidden=16,
                          config=_config(rounds=1)) as trainer:
            trainer.run()
            pool = trainer.backend._pool
            assert pool is not None and not pool.closed
            trainer.run()
            assert trainer.backend._pool is pool  # persisted across runs
        assert trainer.backend._pool is None  # released on exit

    def test_plain_run_releases_pool(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config(rounds=1))
        trainer.run()
        assert trainer.backend._pool is None

    def test_run_after_context_exit_releases_pool(self, community_clients):
        with FederatedGNN(community_clients, "gcn", hidden=16,
                          config=_config(rounds=1)) as trainer:
            trainer.run()
        # Standalone semantics are restored after the block: a later run()
        # must release the pool it respawns.
        trainer.run()
        assert trainer.backend._pool is None

    def test_no_poolable_clients_spawns_no_workers(self, community_clients):
        # FedGL-style: every client hooked → the pool must never spawn.
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config(rounds=2))
        for client in trainer.clients:
            client.extra_loss = lambda client, logits: None
        with trainer:
            trainer.run()
            assert trainer.backend._pool is None

    def test_worker_failure_raises_worker_error(self, community_clients):
        """A mid-round worker crash surfaces the worker traceback (not a
        protocol-desync AttributeError) and still reclaims the pool."""
        import copy
        clients = copy.deepcopy(community_clients)
        trainer = FederatedGNN(clients, "gcn", hidden=16,
                               config=_config(rounds=2,
                                              intra_worker="serial"))
        # Sabotage a worker-side client: out-of-range labels make the
        # cross-entropy gather raise inside the worker process.
        trainer.clients[0].graph.labels[:] = 999
        with pytest.raises(WorkerError, match="worker 0 failed"):
            trainer.run()
        assert trainer.backend._pool is None

    def test_coordinator_failure_preserves_original_error(
            self, community_clients):
        """An in-process client crashing between send and recv must surface
        its own exception — not a protocol-desync AttributeError from the
        close-time sync consuming the workers' still-queued train replies."""
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config(rounds=2,
                                              intra_worker="serial"))

        def bomb(client, logits):
            raise RuntimeError("local boom")
        trainer.clients[1].extra_loss = bomb  # coordinator-resident
        with pytest.raises(RuntimeError, match="local boom"):
            trainer.run()
        assert trainer.backend._pool is None

    def test_midround_failure_releases_pool(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config(rounds=3))

        def explode(round_index, participants):
            if round_index == 2:
                raise RuntimeError("boom")
        trainer.before_round = explode
        with pytest.raises(RuntimeError, match="boom"):
            trainer.run()
        assert trainer.backend._pool is None

    def test_make_backend_accepts_intra_worker(self):
        from repro.federated import make_backend
        backend = make_backend("process_pool", num_workers=2,
                               intra_worker="serial")
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.intra_worker == "serial"
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, intra_worker="quantum")

    def test_legacy_factory_signature_still_works(self):
        """Externally registered num_workers-only factories keep working:
        unknown knobs are filtered by signature, not force-fed."""
        from repro.federated import make_backend
        from repro.federated.engine import SerialBackend, register_backend
        from repro.federated.engine.backends import BACKEND_REGISTRY
        register_backend("legacy-test", lambda num_workers=None:
                         SerialBackend())
        try:
            backend = make_backend("legacy-test", num_workers=2,
                                   intra_worker="auto")
            assert isinstance(backend, SerialBackend)
        finally:
            BACKEND_REGISTRY.pop("legacy-test", None)

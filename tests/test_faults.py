"""Fault-tolerance suite: deterministic chaos, recovery, timeouts, resume.

Exercises the fault-injection harness (:mod:`repro.federated.engine.faults`)
against the persistent-worker engine's recovery machinery:

* seeded :class:`FaultPlan` determinism and fire-at-most-once semantics;
* checksummed delta transport (corrupt/drop detection + single resend);
* worker crashes under every ``on_worker_failure`` policy — ``restart`` and
  ``redistribute`` must reproduce the failure-free history **bitwise**
  (recovery snapshots roll residents back exactly), ``fail`` must surface a
  :class:`WorkerCrash` carrying the worker id;
* ``round_timeout`` degradation in both sync and async round modes;
* checkpoint/resume parity on the serial and sync-pipelined paths;
* :class:`StreamingAggregate` drop renormalisation;
* the enriched :class:`WorkerError` diagnostics and the pool's tolerance of
  already-dead workers at shutdown.

CI runs this file as the ``chaos-smoke`` job under a tight per-test hang
guard (``REPRO_TEST_TIMEOUT``), because these tests kill real worker
processes and a supervision bug would otherwise hang forever.
"""

import os
import pickle

import numpy as np
import pytest

from repro.federated import FederatedConfig
from repro.federated.engine import (
    FaultEvent,
    FaultPlan,
    PersistentWorkerPool,
    StreamingAggregate,
    WorkerCrash,
    WorkerError,
    payload_checksum,
)
from repro.federated.server import fedavg_aggregate
from repro.fgl.fedgnn import FederatedGNN
from repro.simulation import community_split


@pytest.fixture(scope="module")
def four_clients(homophilous_graph):
    return community_split(homophilous_graph, 4, seed=0)


def _run(clients, rounds=4, **kwargs):
    defaults = dict(rounds=rounds, local_epochs=2, lr=0.02, seed=0,
                    backend="process_pool", num_workers=2,
                    intra_worker="serial")
    defaults.update(kwargs)
    trainer = FederatedGNN(clients, "gcn", hidden=16,
                           config=FederatedConfig(**defaults))
    history = trainer.run()
    return trainer, history


def _assert_history_bitwise(a, b):
    assert a.rounds == b.rounds
    np.testing.assert_array_equal(a.loss, b.loss)
    np.testing.assert_array_equal(a.test_accuracy, b.test_accuracy)
    np.testing.assert_array_equal(a.train_accuracy, b.train_accuracy)


class TestFaultPlan:
    def test_seeded_plans_are_deterministic(self):
        kwargs = dict(seed=7, num_workers=4, dispatches=10, crash_rate=0.1,
                      stall_rate=0.1, corrupt_rate=0.1, drop_rate=0.1)
        a, b = FaultPlan.seeded(**kwargs), FaultPlan.seeded(**kwargs)
        assert a.remaining == b.remaining > 0
        for worker in range(4):
            for dispatch in range(1, 11):
                assert a.take(worker, dispatch) == b.take(worker, dispatch)

    def test_events_fire_at_most_once(self):
        plan = FaultPlan([FaultEvent(0, 2, "crash")])
        assert plan.remaining == 1
        assert [e.kind for e in plan.take(0, 2)] == ["crash"]
        assert plan.take(0, 2) == []          # already fired
        assert plan.remaining == 0
        assert plan.fired_counts() == {"crash": 1}

    def test_take_filters_by_kind_family(self):
        plan = FaultPlan([FaultEvent(1, 3, "stall", duration=0.5),
                          FaultEvent(1, 3, "corrupt")])
        worker_side = plan.take(1, 3, kinds=("crash", "stall"))
        assert [e.kind for e in worker_side] == ["stall"]
        transport = plan.take(1, 3, kinds=("corrupt", "drop"))
        assert [e.kind for e in transport] == ["corrupt"]
        assert plan.remaining == 0

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0, 1, "meteor")
        with pytest.raises(ValueError, match="1-based"):
            FaultEvent(0, 0, "crash")
        with pytest.raises(ValueError, match="positive duration"):
            FaultEvent(0, 1, "stall", duration=0.0)
        with pytest.raises(ValueError, match="sum to <= 1.0"):
            FaultPlan.seeded(0, 2, 4, crash_rate=0.6, drop_rate=0.6)


class TestPayloadChecksum:
    def test_equal_payloads_equal_checksums(self, rng):
        payload = {"w": rng.normal(size=(8, 4)),
                   "topk": (np.arange(5), rng.normal(size=5), (8, 4))}
        clone = {"w": payload["w"].copy(),
                 "topk": (payload["topk"][0].copy(),
                          payload["topk"][1].copy(), (8, 4))}
        assert payload_checksum(payload) == payload_checksum(clone)

    def test_single_bit_flip_changes_checksum(self, rng):
        payload = {"w": rng.normal(size=(8, 4))}
        before = payload_checksum(payload)
        flipped = {"w": payload["w"].copy()}
        bits = flipped["w"].view(np.uint64)
        bits[0, 0] ^= 1
        assert payload_checksum(flipped) != before

    def test_dtype_and_shape_are_covered(self):
        a = {"w": np.zeros(4, dtype=np.float64)}
        b = {"w": np.zeros(4, dtype=np.float32)}
        c = {"w": np.zeros((2, 2), dtype=np.float64)}
        assert payload_checksum(a) != payload_checksum(b)
        assert payload_checksum(a) != payload_checksum(c)


class TestCrashRecovery:
    """A mid-run worker crash must be invisible in the training history."""

    @pytest.mark.parametrize("policy", ["restart", "redistribute"])
    def test_recovery_reproduces_failure_free_history(self, policy,
                                                      four_clients):
        _, baseline = _run(four_clients)
        plan = FaultPlan([FaultEvent(worker=0, dispatch=2, kind="crash")])
        trainer, history = _run(four_clients, on_worker_failure=policy,
                                fault_plan=plan)
        assert trainer.backend.fault_stats["crashes"] == 1
        if policy == "restart":
            assert trainer.backend.fault_stats["restarts"] == 1
        else:
            assert trainer.backend.fault_stats["redistributed_clients"] >= 1
        assert plan.remaining == 0
        _assert_history_bitwise(baseline, history)

    def test_fail_policy_surfaces_worker_crash(self, four_clients):
        plan = FaultPlan([FaultEvent(worker=0, dispatch=2, kind="crash")])
        trainer = FederatedGNN(four_clients, "gcn", hidden=16,
                               config=FederatedConfig(
                                   rounds=4, local_epochs=2, lr=0.02, seed=0,
                                   backend="process_pool", num_workers=2,
                                   intra_worker="serial", fault_plan=plan))
        with pytest.raises(WorkerCrash) as excinfo:
            trainer.run()
        assert excinfo.value.worker == 0
        assert trainer.backend._pool is None  # pool reclaimed on failure

    def test_corrupt_and_drop_are_repaired_by_resend(self, four_clients):
        _, baseline = _run(four_clients)
        plan = FaultPlan([FaultEvent(0, 2, "corrupt"),
                          FaultEvent(1, 3, "drop")])
        trainer, history = _run(four_clients, on_worker_failure="restart",
                                fault_plan=plan)
        assert trainer.backend.fault_stats["retries"] == 2
        assert trainer.backend.fault_stats["crashes"] == 0
        _assert_history_bitwise(baseline, history)

    def test_corrupted_broadcast_recovers_with_one_resend(
            self, four_clients):
        """A damaged *downlink* broadcast is rejected worker-side and
        repaired by one clean resend from the coordinator's cache."""
        _, baseline = _run(four_clients)
        plan = FaultPlan([FaultEvent(0, 2, "corrupt_down"),
                          FaultEvent(1, 3, "corrupt_down")])
        trainer, history = _run(four_clients, fault_plan=plan)
        assert trainer.backend.fault_stats["broadcast_retries"] == 2
        assert trainer.backend.fault_stats["crashes"] == 0
        assert trainer.backend.fault_stats["retries"] == 0
        _assert_history_bitwise(baseline, history)

    def test_corrupted_broadcast_both_directions_same_round(
            self, four_clients):
        """Downlink and uplink corruption on the same dispatch recover
        independently (reject->resend down, checksum->resend up)."""
        _, baseline = _run(four_clients)
        plan = FaultPlan([FaultEvent(0, 2, "corrupt_down"),
                          FaultEvent(0, 2, "corrupt")])
        trainer, history = _run(four_clients, fault_plan=plan)
        assert trainer.backend.fault_stats["broadcast_retries"] == 1
        assert trainer.backend.fault_stats["retries"] == 1
        _assert_history_bitwise(baseline, history)

    def test_unpicklable_client_falls_back_local_during_recovery(
            self, four_clients):
        """A mirror that cannot be re-adopted after a crash is evicted to
        the coordinator instead of killing the run."""
        plan = FaultPlan([FaultEvent(worker=0, dispatch=2, kind="crash")])
        trainer = FederatedGNN(four_clients, "gcn", hidden=16,
                               config=FederatedConfig(
                                   rounds=4, local_epochs=2, lr=0.02, seed=0,
                                   backend="process_pool", num_workers=2,
                                   intra_worker="serial",
                                   on_worker_failure="restart",
                                   fault_plan=plan))

        def poison_mirror(round_index, participants):
            if round_index == 2:
                # A non-picklable attribute the dispatch-time extra_loss
                # eviction does not see: recovery's re-adopt pickle fails.
                trainer.clients[0].bomb = lambda: None
        trainer.before_round = poison_mirror
        local_seen = []

        def record(round_index, participants):
            if 0 in trainer.backend._local:
                local_seen.append(round_index)
        trainer.after_round = record
        # Overriding the round hooks routes through the classic barrier
        # round, which exercises the same crash-recovery machinery.
        history = trainer.run()
        assert trainer.backend.fault_stats["crashes"] == 1
        # Client 0's crashed-round report was dropped, then it trained
        # in-process for every remaining round.
        assert trainer.backend.fault_stats["dropped_reports"] >= 1
        assert local_seen == [2, 3, 4]
        assert len(history.rounds) == 4
        assert np.isfinite(history.loss).all()


class TestRoundTimeout:
    def test_sync_timeout_drops_stalled_shard(self, four_clients):
        plan = FaultPlan([FaultEvent(0, 2, "stall", duration=2.0)])
        trainer, history = _run(four_clients, on_worker_failure="restart",
                                fault_plan=plan, round_timeout=0.6)
        assert trainer.backend.fault_stats["timeouts"] >= 1
        assert history.client_drops            # late reports were recorded
        assert len(history.rounds) == 4
        assert np.isfinite(history.test_accuracy[-1])

    def test_async_timeout_discards_stale_job(self, four_clients):
        plan = FaultPlan([FaultEvent(0, 2, "stall", duration=2.0)])
        trainer, history = _run(four_clients, round_mode="async",
                                async_buffer=1, on_worker_failure="restart",
                                fault_plan=plan, round_timeout=0.6,
                                worker_speeds=[1.0, 0.8])
        assert trainer.backend.fault_stats["timeouts"] >= 1
        assert history.client_drops
        assert np.isfinite(history.test_accuracy[-1])


class TestAsyncRecovery:
    @pytest.mark.parametrize("policy", ["restart", "redistribute"])
    def test_async_crash_recovery_completes(self, policy, four_clients):
        plan = FaultPlan([FaultEvent(worker=1, dispatch=2, kind="crash")])
        trainer, history = _run(four_clients, round_mode="async",
                                async_buffer=2, on_worker_failure=policy,
                                fault_plan=plan, worker_speeds=[1.0, 0.8])
        stats = trainer.backend.fault_stats
        assert stats["crashes"] == 1
        if policy == "restart":
            assert stats["restarts"] == 1
        else:
            assert stats["redistributed_clients"] >= 1
        assert len(history.rounds) == 4
        assert np.isfinite(history.test_accuracy[-1])

    def test_async_refuses_checkpoint_knobs(self, four_clients):
        trainer = FederatedGNN(four_clients, "gcn", hidden=16,
                               config=FederatedConfig(
                                   rounds=2, local_epochs=1, seed=0,
                                   backend="process_pool", num_workers=2,
                                   round_mode="async", checkpoint_every=1))
        with pytest.raises(ValueError, match="checkpoint"):
            trainer.run()


class TestCheckpointResume:
    @pytest.mark.parametrize("backend", ["serial", "process_pool"])
    def test_resume_is_bitwise_identical(self, backend, four_clients,
                                         tmp_path):
        def run(rounds, **kwargs):
            return _run(four_clients, rounds=rounds, backend=backend,
                        num_workers=2 if backend == "process_pool" else 0,
                        participation=0.75, **kwargs)

        _, full = run(rounds=6)
        run(rounds=3, checkpoint_every=3, checkpoint_dir=str(tmp_path))
        ckpt = tmp_path / "round_0003.ckpt"
        assert ckpt.exists() and (tmp_path / "latest.ckpt").exists()
        _, resumed = run(rounds=6, resume_from=str(ckpt))
        _assert_history_bitwise(full, resumed)
        for a, b in zip(full.client_accuracy, resumed.client_accuracy):
            assert a == b

    def test_hierarchical_resume_is_bitwise_identical(self, four_clients,
                                                      tmp_path):
        """PR 6's bitwise resume bar, extended to the hierarchical
        (fold_weights edge-aggregation) path."""
        def run(rounds, **kwargs):
            return _run(four_clients, rounds=rounds, num_workers=2,
                        hierarchical=True, participation=0.75, **kwargs)

        _, full = run(rounds=6)
        trainer, _ = run(rounds=3, checkpoint_every=3,
                         checkpoint_dir=str(tmp_path))
        assert trainer.backend.hierarchical
        ckpt = tmp_path / "round_0003.ckpt"
        assert ckpt.exists()
        _, resumed = run(rounds=6, resume_from=str(ckpt))
        _assert_history_bitwise(full, resumed)
        for a, b in zip(full.client_accuracy, resumed.client_accuracy):
            assert a == b
        # The fold path must also match flat FedAvg's resumed history
        # bitwise (the hierarchical invariant holds across a resume).
        _, flat = _run(four_clients, rounds=6, num_workers=2,
                       participation=0.75, resume_from=str(ckpt))
        _assert_history_bitwise(full, flat)

    def test_checkpoint_file_format(self, four_clients, tmp_path):
        trainer, _ = _run(four_clients, rounds=2, backend="serial",
                          num_workers=0, checkpoint_every=1,
                          checkpoint_dir=str(tmp_path))
        with open(tmp_path / "round_0002.ckpt", "rb") as handle:
            payload = pickle.load(handle)
        assert payload["format"] == 1
        assert payload["round"] == 2
        assert set(payload["clients"]) == \
            {c.client_id for c in trainer.clients}
        for section in ("server", "strategy", "trainer_rng", "history",
                        "tracker"):
            assert section in payload

    def test_resume_rejects_mismatched_clients(self, four_clients,
                                               community_clients, tmp_path):
        _run(four_clients, rounds=1, backend="serial", num_workers=0,
             checkpoint_every=1, checkpoint_dir=str(tmp_path))
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=FederatedConfig(
                                   rounds=2, local_epochs=1, seed=0,
                                   backend="serial",
                                   resume_from=str(tmp_path /
                                                   "round_0001.ckpt")))
        with pytest.raises(ValueError, match="client"):
            trainer.run()


class TestStreamingDrop:
    def _states(self, rng, n):
        return [{"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)}
                for _ in range(n)]

    def test_drop_free_round_is_bitwise_fedavg(self, rng):
        states, weights = self._states(rng, 3), [1.0, 2.0, 3.0]
        fold = StreamingAggregate(weights)
        for index, state in enumerate(states):
            fold.add(index, state)
        sealed = fold.seal()
        expected = fedavg_aggregate(states, weights)
        for key in expected:
            np.testing.assert_array_equal(sealed[key], expected[key])

    def test_drop_renormalises_over_survivors(self, rng):
        states, weights = self._states(rng, 4), [1.0, 2.0, 3.0, 4.0]
        fold = StreamingAggregate(weights)
        fold.drop(1)
        for index in (0, 2, 3):
            fold.add(index, states[index])
        assert fold.dropped == 1
        sealed = fold.seal()
        survivors = fedavg_aggregate([states[0], states[2], states[3]],
                                     [1.0, 3.0, 4.0])
        for key in survivors:
            np.testing.assert_allclose(sealed[key], survivors[key],
                                       rtol=1e-12, atol=1e-15)

    def test_all_dropped_raises(self):
        fold = StreamingAggregate([1.0, 1.0])
        fold.drop(0)
        fold.drop(1)
        with pytest.raises(RuntimeError, match="dropped"):
            fold.seal()

    def test_drop_validation(self, rng):
        fold = StreamingAggregate([1.0, 1.0])
        fold.add(0, self._states(rng, 1)[0])
        with pytest.raises(ValueError, match="already folded"):
            fold.drop(0)
        with pytest.raises(IndexError):
            fold.drop(5)
        with pytest.raises(RuntimeError, match="pending"):
            fold.seal()


class TestWorkerDiagnostics:
    """Satellites: enriched WorkerError, shutdown tolerance of dead workers."""

    def test_worker_error_carries_context(self, four_clients):
        import copy
        clients = copy.deepcopy(four_clients)
        trainer = FederatedGNN(clients, "gcn", hidden=16,
                               config=FederatedConfig(
                                   rounds=2, local_epochs=1, seed=0,
                                   backend="process_pool", num_workers=2,
                                   intra_worker="serial"))
        # Out-of-range labels make the cross-entropy gather raise inside
        # the worker holding client 0.
        trainer.clients[0].graph.labels[:] = 999
        with pytest.raises(WorkerError) as excinfo:
            trainer.run()
        error = excinfo.value
        assert error.worker == 0
        assert error.command == "train"
        assert error.remote_traceback and "Traceback" in error.remote_traceback

    def test_shutdown_tolerates_dead_workers(self):
        pool = PersistentWorkerPool(2)
        pool._procs[0].terminate()
        pool._procs[0].join()
        pool.shutdown()                       # must not raise
        assert pool.closed
        pool.shutdown()                       # and stays idempotent

    def test_poll_reports_dead_worker_without_hanging(self):
        pool = PersistentWorkerPool(2)
        try:
            os.kill(pool._procs[0].pid, 9)
            pool._procs[0].join()
            with pytest.raises(WorkerCrash):
                pool.call(0, "fetch_all", None)
            # The surviving worker keeps answering.
            assert pool.call(1, "fetch_all", None) == {}
        finally:
            pool.shutdown()

"""Tests for the federation engine: execution backends × aggregation."""

import dataclasses

import numpy as np
import pytest

from repro.core import AdaFGL, AdaFGLConfig
from repro.experiments import ExperimentSettings
from repro.federated import (
    AggregationContext,
    FederatedConfig,
    fedavg_aggregate,
    list_aggregations,
    list_backends,
    make_aggregation,
    make_backend,
)
from repro.federated.engine import (
    BatchedBackend,
    FedAdagradAggregation,
    FedAdamAggregation,
    FedYogiAggregation,
    ProcessPoolBackend,
    SerialBackend,
    TopologyWeightedAggregation,
    TrimmedMeanAggregation,
    restore_client_state,
    snapshot_client_state,
)
from repro.federated.engine.batched import _BatchedSGCPlan
from repro.fgl.fedgnn import FederatedGNN, make_model_factory
from repro.federated.trainer import FederatedTrainer


BACKENDS = ["serial", "process_pool", "batched"]


def _config(backend="serial", rounds=3, **kwargs):
    defaults = dict(rounds=rounds, local_epochs=2, lr=0.02, seed=0,
                    backend=backend,
                    num_workers=2 if backend == "process_pool" else 0)
    defaults.update(kwargs)
    return FederatedConfig(**defaults)


def _run(clients, backend, model="gcn", **kwargs):
    trainer = FederatedGNN(clients, model, hidden=16,
                           config=_config(backend, **kwargs))
    history = trainer.run()
    return trainer, history


class TestRegistries:
    def test_backend_names(self):
        assert {"serial", "process_pool", "batched"} <= set(list_backends())

    def test_aggregation_names(self):
        assert {"fedavg", "topology_weighted", "trimmed_mean"} \
            <= set(list_aggregations())

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            make_backend("quantum")

    def test_unknown_aggregation_raises(self):
        with pytest.raises(KeyError):
            make_aggregation("quantum")

    def test_instances_pass_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend
        strategy = TrimmedMeanAggregation()
        assert make_aggregation(strategy) is strategy

    def test_make_backend_by_name(self):
        assert isinstance(make_backend("batched"), BatchedBackend)
        assert isinstance(make_backend("process_pool", num_workers=2),
                          ProcessPoolBackend)


class TestBackendEquivalence:
    """Every backend must reproduce the serial TrainingHistory exactly."""

    @pytest.fixture(scope="class")
    def serial_history(self, community_clients):
        return _run(community_clients, "serial")[1]

    @pytest.mark.parametrize("backend", ["process_pool", "batched"])
    def test_history_matches_serial(self, backend, community_clients,
                                    serial_history):
        trainer, history = _run(community_clients, backend)
        assert history.rounds == serial_history.rounds
        np.testing.assert_allclose(history.loss, serial_history.loss,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(history.test_accuracy,
                                   serial_history.test_accuracy, atol=1e-12)
        np.testing.assert_allclose(history.train_accuracy,
                                   serial_history.train_accuracy, atol=1e-12)
        if backend == "batched":
            assert trainer.backend.last_fallback is None

    @pytest.mark.parametrize("backend", ["process_pool", "batched"])
    def test_final_weights_match_serial(self, backend, community_clients):
        serial_trainer, _ = _run(community_clients, "serial")
        other_trainer, _ = _run(community_clients, backend)
        for a, b in zip(serial_trainer.clients, other_trainer.clients):
            state_a, state_b = a.get_weights(), b.get_weights()
            for key in state_a:
                np.testing.assert_allclose(state_a[key], state_b[key],
                                           rtol=1e-9, atol=1e-12)

    def test_batched_optimizer_state_written_back(self, community_clients):
        trainer, _ = _run(community_clients, "batched")
        config = trainer.config
        expected_steps = config.rounds * config.local_epochs
        for client in trainer.clients:
            assert client.optimizer._step_count == expected_steps
            assert all(np.any(m != 0) for m in client.optimizer._m)

    def test_batched_falls_back_on_unplanned_model(self, community_clients):
        # GCNII has no batched plan family (GAMLP/GPR-GNN joined in PR 5).
        serial_trainer, serial_history = _run(community_clients, "serial",
                                              model="gcnii", rounds=2)
        batched_trainer, batched_history = _run(community_clients, "batched",
                                                model="gcnii", rounds=2)
        assert batched_trainer.backend.last_fallback is not None
        np.testing.assert_allclose(batched_history.loss, serial_history.loss)
        assert batched_history.test_accuracy == serial_history.test_accuracy


class TestBatchedSGC:
    """The SGC/propagation-family batched plan vs serial SGC."""

    def test_history_matches_serial_exactly(self, community_clients):
        serial_trainer, serial_history = _run(community_clients, "serial",
                                              model="sgc")
        batched_trainer, batched_history = _run(community_clients, "batched",
                                                model="sgc")
        assert batched_trainer.backend.last_fallback is None
        assert batched_history.rounds == serial_history.rounds
        np.testing.assert_array_equal(batched_history.loss,
                                      serial_history.loss)
        np.testing.assert_array_equal(batched_history.test_accuracy,
                                      serial_history.test_accuracy)
        assert batched_trainer.evaluate("test") == \
            serial_trainer.evaluate("test")

    def test_final_weights_match_serial(self, community_clients):
        serial_trainer, _ = _run(community_clients, "serial", model="sgc")
        batched_trainer, _ = _run(community_clients, "batched", model="sgc")
        for a, b in zip(serial_trainer.clients, batched_trainer.clients):
            state_a, state_b = a.get_weights(), b.get_weights()
            for key in state_a:
                np.testing.assert_allclose(state_a[key], state_b[key],
                                           rtol=1e-9, atol=1e-12)

    def test_khop_precompute_cached_in_plan(self, community_clients):
        trainer = FederatedGNN(community_clients, "sgc", hidden=16,
                               config=_config("batched"))
        with trainer:  # keep the backend (and its plan cache) alive
            trainer.run()
            plans = list(trainer.backend._plans.values())
            assert len(plans) == 1
            assert isinstance(plans[0], _BatchedSGCPlan)
            # The constant k-hop block exists and every epoch reuses it.
            assert plans[0].propagated.shape[0] == len(trainer.clients)

    def test_mixed_model_families_fall_back(self, community_clients):
        # A mixed GCN/SGC participant set is not architecture-homogeneous;
        # the backend must refuse to fuse it and train serially instead.
        gcn_trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                                   config=_config("serial", rounds=1))
        sgc_trainer = FederatedGNN(community_clients, "sgc", hidden=16,
                                   config=_config("serial", rounds=1))
        backend = BatchedBackend()
        mixed = [gcn_trainer.clients[0], sgc_trainer.clients[1]]
        losses = backend.run_local_training(mixed)
        assert backend.last_fallback is not None
        assert len(losses) == 2

    def test_plan_construction_failure_is_cached(self, community_clients,
                                                 monkeypatch):
        from repro.federated.engine import batched as batched_module

        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config("serial", rounds=1))
        attempts = []

        class ExplodingPlan:
            def __init__(self, participants):
                attempts.append(len(participants))
                raise ValueError("cannot fuse this group")

            @staticmethod
            def signature(model):
                return ()

        monkeypatch.setattr(batched_module, "_plan_family",
                            lambda client: ExplodingPlan)
        backend = BatchedBackend()
        key = tuple(c.client_id for c in trainer.clients)
        backend.run_local_training(trainer.clients)
        assert backend._plans[key] == "cannot fuse this group"
        # Second round: the cached reason short-circuits the rebuild.
        backend.run_local_training(trainer.clients)
        assert attempts == [len(trainer.clients)]
        assert backend.last_fallback == "cannot fuse this group"

    def test_heterogeneous_k_falls_back(self, community_clients):
        from repro.models import SGC

        def make(k):
            trainer = FederatedGNN(community_clients, "sgc", hidden=16,
                                   config=_config("serial", rounds=1))
            for client in trainer.clients:
                client.model.k = k
            return trainer
        backend = BatchedBackend()
        mixed = [make(1).clients[0], make(3).clients[1]]
        backend.run_local_training(mixed)
        assert backend.last_fallback is not None
        assert isinstance(mixed[0].model, SGC)


class TestFedAdam:
    def test_registered(self):
        assert "fedadam" in list_aggregations()
        assert isinstance(make_aggregation("fedadam"), FedAdamAggregation)

    def test_two_round_hand_computed_trace(self):
        strategy = FedAdamAggregation(server_lr=0.1, beta1=0.9, beta2=0.99,
                                      tau=1e-3)
        # Round 1: no server model yet → adopt the FedAvg result, x₁ = 1.
        out1 = strategy.aggregate([{"w": np.array([1.0])}], [1.0])
        assert out1["w"][0] == pytest.approx(1.0, abs=0.0)
        # Round 2: avg = 2 → Δ = 1, m = 0.1·1, v = 0.01·1,
        # x₂ = 1 + 0.1 · 0.1 / (√0.01 + 1e-3).
        out2 = strategy.aggregate([{"w": np.array([2.0])}], [1.0])
        x2 = 1.0 + 0.1 * 0.1 / (np.sqrt(0.01) + 1e-3)
        assert out2["w"][0] == pytest.approx(x2, rel=1e-15)
        # Round 3: avg = 0.5 → Δ = 0.5 - x₂ and the moments accumulate.
        out3 = strategy.aggregate([{"w": np.array([0.5])}], [1.0])
        delta = 0.5 - x2
        m = 0.9 * 0.1 + 0.1 * delta
        v = 0.99 * 0.01 + 0.01 * delta * delta
        x3 = x2 + 0.1 * m / (np.sqrt(v) + 1e-3)
        assert out3["w"][0] == pytest.approx(x3, rel=1e-15)

    def test_first_round_uses_weighted_average(self):
        strategy = FedAdamAggregation()
        out = strategy.aggregate([{"w": np.array([0.0])},
                                  {"w": np.array([4.0])}], [3.0, 1.0])
        assert out["w"][0] == pytest.approx(1.0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            FedAdamAggregation(server_lr=0.0)
        with pytest.raises(ValueError):
            FedAdamAggregation(beta1=1.0)
        with pytest.raises(ValueError):
            FedAdamAggregation(tau=0.0)  # would NaN on zero pseudo-gradients

    def test_end_to_end_differs_from_fedavg(self, community_clients):
        _, fedavg_history = _run(community_clients, "serial", rounds=3)
        _, fedadam_history = _run(community_clients, "serial", rounds=3,
                                  aggregation="fedadam")
        assert not np.allclose(fedavg_history.loss, fedadam_history.loss)


class TestFedYogi:
    def test_registered(self):
        assert "fedyogi" in list_aggregations()
        assert isinstance(make_aggregation("fedyogi"), FedYogiAggregation)

    def test_two_round_hand_computed_trace(self):
        strategy = FedYogiAggregation(server_lr=0.1, beta1=0.9, beta2=0.99,
                                      tau=1e-3)
        # Round 1: adopt the FedAvg result, x₁ = 1, moments zero.
        out1 = strategy.aggregate([{"w": np.array([1.0])}], [1.0])
        assert out1["w"][0] == pytest.approx(1.0, abs=0.0)
        # Round 2: Δ = 1, m = 0.1; Yogi second moment from v=0:
        # v = 0 - 0.01 · 1 · sign(0 - 1) = +0.01 (same as Adam this round),
        # x₂ = 1 + 0.1 · 0.1 / (√0.01 + 1e-3).
        out2 = strategy.aggregate([{"w": np.array([2.0])}], [1.0])
        x2 = 1.0 + 0.1 * 0.1 / (np.sqrt(0.01) + 1e-3)
        assert out2["w"][0] == pytest.approx(x2, rel=1e-15)
        # Round 3 is where Yogi diverges from Adam: the second moment moves
        # *additively* against sign(v - Δ²), not by exponential decay.
        out3 = strategy.aggregate([{"w": np.array([0.5])}], [1.0])
        delta = 0.5 - x2
        m = 0.9 * 0.1 + 0.1 * delta
        v = 0.01 - 0.01 * delta * delta * np.sign(0.01 - delta * delta)
        x3 = x2 + 0.1 * m / (np.sqrt(v) + 1e-3)
        assert out3["w"][0] == pytest.approx(x3, rel=1e-15)

    def test_differs_from_fedadam_after_round_three(self):
        # Identical prefixes by construction, then the v recursions split.
        yogi = FedYogiAggregation()
        adam = FedAdamAggregation()
        outs = []
        for value in (1.0, 2.0, 0.5, 4.0):
            states = [{"w": np.array([value])}]
            outs.append((yogi.aggregate(states, [1.0])["w"][0],
                         adam.aggregate(states, [1.0])["w"][0]))
        assert outs[0][0] == outs[0][1] and outs[1][0] == outs[1][1]
        assert outs[3][0] != outs[3][1]


class TestFedAdagrad:
    def test_registered(self):
        assert "fedadagrad" in list_aggregations()
        assert isinstance(make_aggregation("fedadagrad"),
                          FedAdagradAggregation)

    def test_two_round_hand_computed_trace(self):
        strategy = FedAdagradAggregation(server_lr=0.1, beta1=0.9,
                                         beta2=0.99, tau=1e-3)
        # Round 1: adopt the FedAvg result, x₁ = 1, moments zero.
        out1 = strategy.aggregate([{"w": np.array([1.0])}], [1.0])
        assert out1["w"][0] == pytest.approx(1.0, abs=0.0)
        # Round 2: Δ = 1 → m = 0.1, running sum v = 0 + 1 = 1,
        # x₂ = 1 + 0.1 · 0.1 / (√1 + 1e-3).
        out2 = strategy.aggregate([{"w": np.array([2.0])}], [1.0])
        x2 = 1.0 + 0.1 * 0.1 / (1.0 + 1e-3)
        assert out2["w"][0] == pytest.approx(x2, rel=1e-15)
        # Round 3: Δ = 0.5 - x₂, m accumulates, v only ever grows.
        out3 = strategy.aggregate([{"w": np.array([0.5])}], [1.0])
        delta = 0.5 - x2
        m = 0.9 * 0.1 + 0.1 * delta
        v = 1.0 + delta * delta
        x3 = x2 + 0.1 * m / (np.sqrt(v) + 1e-3)
        assert out3["w"][0] == pytest.approx(x3, rel=1e-15)

    def test_second_moment_is_monotone(self, rng):
        strategy = FedAdagradAggregation()
        strategy.aggregate([{"w": rng.normal(size=4)}], [1.0])
        previous = None
        for _ in range(4):
            strategy.aggregate([{"w": rng.normal(size=4)}], [1.0])
            current = strategy._v["w"].copy()
            if previous is not None:
                assert np.all(current >= previous)
            previous = current


class TestClientSnapshots:
    def test_snapshot_restore_roundtrip(self, community_clients):
        factory = make_model_factory("gcn", hidden=16)
        reference = FederatedTrainer(community_clients, factory,
                                     _config("serial", rounds=1)).clients[0]
        probe = FederatedTrainer(community_clients, factory,
                                 _config("serial", rounds=1)).clients[0]
        reference.local_train()
        restore_client_state(probe, snapshot_client_state(reference))
        np.testing.assert_allclose(probe.predict(), reference.predict())
        assert probe.optimizer._step_count == reference.optimizer._step_count
        # The restored client continues training exactly like the original.
        assert probe.local_train() == pytest.approx(reference.local_train(),
                                                    abs=0.0)

    def test_snapshot_captures_rng(self, community_clients):
        factory = make_model_factory("gcn", hidden=16)
        trainer = FederatedTrainer(community_clients, factory,
                                   _config("serial", rounds=1))
        client = trainer.clients[0]
        snapshot = snapshot_client_state(client)
        first = client.local_train()
        restore_client_state(client, snapshot)
        second = client.local_train()
        # Same weights AND same dropout stream → identical epoch losses.
        assert first == pytest.approx(second, abs=0.0)


class TestAggregationStrategies:
    def test_trimmed_mean_discards_outliers(self):
        states = [{"w": np.full((2, 2), v)} for v in (0.0, 1.0, 2.0, 50.0)]
        out = TrimmedMeanAggregation(trim_ratio=0.25).aggregate(
            states, [1.0] * 4)
        assert np.allclose(out["w"], 1.5)  # mean of the middle two

    def test_trimmed_mean_zero_ratio_is_plain_mean(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([4.0])}]
        out = TrimmedMeanAggregation(trim_ratio=0.0).aggregate(states, [1, 1])
        assert out["w"][0] == pytest.approx(2.0)

    def test_trimmed_mean_invalid_ratio(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregation(trim_ratio=0.5)

    def test_topology_weighted_prefers_representative_clients(
            self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config("serial", rounds=1))
        strategy = TopologyWeightedAggregation(temperature=4.0)
        context = AggregationContext(round_index=1,
                                     participants=trainer.clients,
                                     trainer=trainer)
        base = [float(c.num_samples) for c in trainer.clients]
        adjusted = strategy.participant_weights(base, context)
        assert len(adjusted) == len(base)
        assert all(w > 0 for w in adjusted)
        # Zero temperature reduces exactly to the FedAvg weighting.
        neutral = TopologyWeightedAggregation(temperature=0.0)
        np.testing.assert_allclose(
            neutral.participant_weights(base, context), base)

    def test_topology_weighted_runs_end_to_end(self, community_clients):
        trainer, history = _run(community_clients, "serial", rounds=2,
                                aggregation="topology_weighted")
        assert len(history.rounds) == 2
        assert trainer.server.global_state is not None

    def test_topology_weighted_differs_from_fedavg(self, community_clients):
        _, fedavg_history = _run(community_clients, "serial", rounds=2)
        _, topo_history = _run(
            community_clients, "serial", rounds=2,
            aggregation=TopologyWeightedAggregation(temperature=8.0))
        assert not np.allclose(fedavg_history.loss, topo_history.loss)

    def test_strategy_without_context_falls_back(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([2.0])}]
        out = TopologyWeightedAggregation().aggregate(states, [1.0, 1.0])
        assert out["w"][0] == pytest.approx(
            fedavg_aggregate(states)["w"][0])


class TestPartialParticipation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_selection_count_and_accounting(self, backend, community_clients):
        config = _config(backend, rounds=3, participation=0.67)
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=config)
        trainer.run()
        num_params = trainer.clients[0].model.num_parameters()
        uploaded = trainer.tracker.uploaded["model_parameters"]
        downloaded = trainer.tracker.downloaded["model_parameters"]
        # Uploads: only the selected participants; downloads: broadcast all.
        assert uploaded == 3 * 2 * num_params
        assert downloaded == 3 * len(trainer.clients) * num_params

    def test_selection_is_seed_deterministic(self, community_clients):
        picks = []
        for _ in range(2):
            trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                                   config=_config("serial", rounds=1,
                                                  participation=0.67))
            picks.append([[c.client_id for c in trainer._select_participants()]
                          for _ in range(5)])
        assert picks[0] == picks[1]
        counts = {len(round_picks) for round_picks in picks[0]}
        assert counts == {2}

    def test_partial_participation_histories_match_across_backends(
            self, community_clients):
        histories = {}
        for backend in BACKENDS:
            _, histories[backend] = _run(community_clients, backend,
                                         participation=0.67)
        for backend in ("process_pool", "batched"):
            np.testing.assert_allclose(histories[backend].loss,
                                       histories["serial"].loss,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(histories[backend].test_accuracy,
                                       histories["serial"].test_accuracy,
                                       atol=1e-12)


class TestEvaluationCaching:
    def test_one_forward_per_eval_tick(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config("serial", rounds=2))
        counts = {}

        def wrap(client):
            inner = client.model.forward

            def counting(*args, **kwargs):
                counts[client.client_id] = counts.get(client.client_id, 0) + 1
                return inner(*args, **kwargs)

            client.model.forward = counting

        for client in trainer.clients:
            wrap(client)
        trainer.run()
        # Per round: local_epochs training forwards + ONE cached predict
        # shared by evaluate("train"), evaluate("test") and the per-client
        # breakdown (previously three predict passes per client per round).
        expected = 2 * (trainer.config.local_epochs + 1)
        assert all(count == expected for count in counts.values())

    def test_predict_cache_invalidated_by_updates(self, community_clients):
        trainer = FederatedGNN(community_clients, "gcn", hidden=16,
                               config=_config("serial", rounds=1))
        client = trainer.clients[0]
        first = client.predict()
        assert client.predict() is first  # cached
        client.local_train()
        second = client.predict()
        assert second is not first
        client.set_weights(trainer.clients[1].get_weights())
        assert client.predict() is not second


class TestSparseDefaultParity:
    def test_experiment_settings_default_sparse(self):
        settings = ExperimentSettings()
        assert settings.adafgl_config().sparse_propagation is True
        # The library-level config stays dense (explicit opt-in elsewhere).
        assert AdaFGLConfig().sparse_propagation is False

    def test_dense_vs_exact_sparse_parity(self, community_clients):
        """The parity gate for the sparse-by-default flip.

        ``sparse_propagation=True, top_k=None`` keeps every off-diagonal
        similarity entry and must reproduce the dense Step-2 history.
        """
        base = AdaFGLConfig(rounds=2, local_epochs=1, hidden=16,
                            personalized_epochs=6, k_prop=2,
                            message_layers=1, seed=0)
        dense = AdaFGL(community_clients, dataclasses.replace(
            base, sparse_propagation=False))
        dense.run()
        sparse = AdaFGL(community_clients, dataclasses.replace(
            base, sparse_propagation=True, propagation_top_k=None))
        sparse.run()
        np.testing.assert_allclose(sparse.history.loss, dense.history.loss,
                                   rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(sparse.history.test_accuracy,
                                   dense.history.test_accuracy, atol=1e-12)

    def test_default_topk_accuracy_within_tolerance(self, community_clients):
        """The default top-k approximation stays close to dense accuracy."""
        base = AdaFGLConfig(rounds=2, local_epochs=1, hidden=16,
                            personalized_epochs=8, k_prop=2,
                            message_layers=1, seed=0)
        dense = AdaFGL(community_clients, dataclasses.replace(
            base, sparse_propagation=False))
        dense.run()
        sparse = AdaFGL(community_clients, dataclasses.replace(
            base, sparse_propagation=True))
        sparse.run()
        assert abs(sparse.evaluate("test") - dense.evaluate("test")) < 0.1

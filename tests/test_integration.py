"""End-to-end integration tests reproducing the paper's qualitative claims
at a miniature scale."""

import numpy as np
import pytest

from repro.core import AdaFGL, AdaFGLConfig
from repro.datasets import load_dataset
from repro.federated import FederatedConfig
from repro.fgl import build_baseline
from repro.graph import edge_homophily
from repro.metrics import client_topology_distribution
from repro.simulation import community_split, structure_noniid_split


pytestmark = pytest.mark.integration


def _accuracy(method, clients, rounds=8, epochs=25, hidden=24, seed=0):
    if method == "adafgl":
        config = AdaFGLConfig(rounds=rounds, local_epochs=3, hidden=hidden,
                              personalized_epochs=epochs, seed=seed)
        trainer = AdaFGL(clients, config)
        trainer.run()
    else:
        config = FederatedConfig(rounds=rounds, local_epochs=3, seed=seed)
        trainer = build_baseline(method, clients, config=config, hidden=hidden)
        trainer.run()
    return trainer.evaluate("test")


@pytest.fixture(scope="module")
def cora_graph():
    return load_dataset("cora", seed=0, num_nodes=400)


@pytest.fixture(scope="module")
def cora_community(cora_graph):
    return community_split(cora_graph, 4, seed=0)


@pytest.fixture(scope="module")
def cora_noniid(cora_graph):
    return structure_noniid_split(cora_graph, 4, seed=0)


class TestStructureNonIidPhenomenon:
    def test_noniid_split_creates_topology_heterogeneity(self, cora_community,
                                                         cora_noniid):
        """Fig. 2(b): structure Non-iid creates diverse client topologies."""
        community_stats = client_topology_distribution(cora_community)
        noniid_stats = client_topology_distribution(cora_noniid)
        assert noniid_stats[:, 1].std() > community_stats[:, 1].std()

    def test_fedgcn_degrades_under_structure_noniid(self, cora_community,
                                                    cora_noniid):
        """Table II: homophilous federated GNNs lose accuracy under the
        structure Non-iid split of a homophilous global graph."""
        community_acc = _accuracy("fedgcn", cora_community)
        noniid_acc = _accuracy("fedgcn", cora_noniid)
        assert noniid_acc < community_acc + 0.02


class TestAdaFGLClaims:
    def test_adafgl_competitive_on_community_split(self, cora_community):
        ada = _accuracy("adafgl", cora_community)
        gcn = _accuracy("fedgcn", cora_community)
        assert ada >= gcn - 0.03

    def test_adafgl_beats_fedgcn_under_noniid(self, cora_noniid):
        """The headline claim: AdaFGL wins under topology heterogeneity."""
        ada = _accuracy("adafgl", cora_noniid)
        gcn = _accuracy("fedgcn", cora_noniid)
        assert ada >= gcn - 0.01

    def test_adafgl_hcs_tracks_client_homophily(self, cora_noniid):
        """Fig. 7: HCS approximates the true per-client homophily."""
        config = AdaFGLConfig(rounds=6, local_epochs=3, hidden=24,
                              personalized_epochs=10, seed=0)
        trainer = AdaFGL(cora_noniid, config)
        trainer.run()
        hcs = trainer.client_hcs()
        true_homophily = {c.metadata["client_id"]: edge_homophily(c.adjacency,
                                                                  c.labels)
                          for c in cora_noniid}
        ids = sorted(hcs)
        hcs_values = np.array([hcs[i] for i in ids])
        homo_values = np.array([true_homophily[i] for i in ids])
        if np.std(hcs_values) > 1e-6 and np.std(homo_values) > 1e-6:
            correlation = np.corrcoef(hcs_values, homo_values)[0, 1]
            assert correlation > 0.0
        mean_gap = np.mean(np.abs(hcs_values - homo_values))
        assert mean_gap < 0.45


class TestSparseSettings:
    def test_label_sparsity_hurts_but_stays_positive(self, cora_graph):
        from repro.simulation import label_sparsity

        clients = community_split(cora_graph, 3, seed=0)
        sparse_clients = [label_sparsity(c, 0.03, seed=0) for c in clients]
        full = _accuracy("fedgcn", clients, rounds=5, hidden=16)
        sparse = _accuracy("fedgcn", sparse_clients, rounds=5, hidden=16)
        assert sparse <= full + 0.05
        assert sparse > 1.0 / cora_graph.num_classes

    def test_low_participation_still_trains(self, cora_noniid):
        config = FederatedConfig(rounds=6, local_epochs=2, participation=0.5,
                                 seed=0)
        trainer = build_baseline("fedgcn", cora_noniid, config=config,
                                 hidden=16)
        trainer.run()
        assert trainer.evaluate("test") > 1.0 / cora_noniid[0].num_classes

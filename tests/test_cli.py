"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


FAST_ARGS = ["--clients", "3", "--rounds", "2", "--epochs", "1",
             "--nodes", "150", "--seed", "0"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "adafgl"
        assert args.dataset == "cora"
        assert args.split == "community"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "fedmagic"])

    def test_compare_accepts_multiple_methods(self):
        args = build_parser().parse_args(
            ["compare", "--methods", "fedgcn", "adafgl"])
        assert args.methods == ["fedgcn", "adafgl"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.method == "fedgcn"
        assert args.max_batch == 32
        assert args.max_delay_ms == 2.0
        assert args.snapshot is None


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "squirrel" in out

    def test_run_command_baseline(self, capsys):
        code = main(["run", "--method", "fedgcn", "--dataset", "cora",
                     "--split", "community"] + FAST_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "fedgcn" in out
        assert "test accuracy" in out

    def test_run_command_adafgl_structure(self, capsys):
        code = main(["run", "--method", "adafgl", "--dataset", "citeseer",
                     "--split", "structure"] + FAST_ARGS)
        assert code == 0
        assert "adafgl" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        code = main(["compare", "--dataset", "cora", "--methods", "fedgcn",
                     "fedmlp"] + FAST_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "fedgcn" in out and "fedmlp" in out

    def test_hcs_command(self, capsys):
        code = main(["hcs", "--dataset", "cora", "--split", "structure"]
                    + FAST_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "HCS" in out
        assert "overall test accuracy" in out

    def test_serve_command_trains_exports_and_reloads(self, capsys,
                                                      tmp_path):
        snapshot_path = str(tmp_path / "snap.pkl")
        code = main(["serve", "--method", "fedgcn", "--dataset", "cora",
                     "--queries", "120", "--rate", "3000",
                     "--inductive-frac", "0.1", "--max-batch", "8",
                     "--export", snapshot_path] + FAST_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out and "achieved qps" in out
        # Second run serves the exported snapshot without retraining.
        code = main(["serve", "--snapshot", snapshot_path,
                     "--queries", "60", "--rate", "3000"] + FAST_ARGS)
        assert code == 0
        assert "source: trainer" in capsys.readouterr().out

"""Tests for the federated framework: client, server, trainer, communication."""

import numpy as np
import pytest

from repro.federated import (
    Client,
    CommunicationTracker,
    FederatedConfig,
    FederatedTrainer,
    Server,
    fedavg_aggregate,
)
from repro.fgl.fedgnn import make_model_factory
from repro.models import GCN


def _make_client(graph, client_id=0, seed=0):
    model = GCN(graph.num_features, 16, graph.num_classes, seed=seed)
    return Client(client_id=client_id, graph=graph, model=model, lr=0.02,
                  local_epochs=2)


class TestFedAvgAggregate:
    def test_uniform_average(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([2.0])}]
        out = fedavg_aggregate(states)
        assert out["w"][0] == pytest.approx(1.0)

    def test_weighted_average(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([2.0])}]
        out = fedavg_aggregate(states, weights=[3.0, 1.0])
        assert out["w"][0] == pytest.approx(0.5)

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([{"w": np.zeros(1)}], weights=[1.0, 1.0])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([{"w": np.zeros(1)}], weights=[0.0])

    def test_mismatched_keys_rejected(self):
        with pytest.raises(KeyError):
            fedavg_aggregate([{"a": np.zeros(1)}, {"b": np.zeros(1)}])

    def test_preserves_shapes(self):
        states = [{"w": np.ones((3, 4))}, {"w": np.zeros((3, 4))}]
        out = fedavg_aggregate(states)
        assert out["w"].shape == (3, 4)
        assert np.allclose(out["w"], 0.5)


class TestServer:
    def test_broadcast_before_aggregate_raises(self):
        with pytest.raises(RuntimeError):
            Server().broadcast()

    def test_round_counter(self):
        server = Server()
        server.aggregate([{"w": np.zeros(2)}])
        server.aggregate([{"w": np.ones(2)}])
        assert server.round == 2

    def test_broadcast_returns_copy(self):
        server = Server()
        server.aggregate([{"w": np.zeros(2)}])
        state = server.broadcast()
        state["w"][:] = 5.0
        assert np.allclose(server.global_state["w"], 0.0)


class TestClient:
    def test_local_train_reduces_loss(self, homophilous_graph):
        client = _make_client(homophilous_graph)
        first = client.local_train(epochs=1)
        for _ in range(10):
            last = client.local_train(epochs=1)
        assert last < first

    def test_predict_shape_and_simplex(self, homophilous_graph):
        client = _make_client(homophilous_graph)
        probs = client.predict()
        assert probs.shape == (homophilous_graph.num_nodes,
                               homophilous_graph.num_classes)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_evaluate_range(self, homophilous_graph):
        client = _make_client(homophilous_graph)
        acc = client.evaluate("test")
        assert 0.0 <= acc <= 1.0

    def test_get_set_weights_roundtrip(self, homophilous_graph):
        a = _make_client(homophilous_graph, seed=0)
        b = _make_client(homophilous_graph, seed=1)
        b.set_weights(a.get_weights())
        assert np.allclose(a.predict(), b.predict())

    def test_num_samples_counts_train_nodes(self, homophilous_graph):
        client = _make_client(homophilous_graph)
        assert client.num_samples == int(homophilous_graph.train_mask.sum())

    def test_extra_loss_hook_called(self, homophilous_graph):
        calls = []

        def extra(client, logits):
            calls.append(1)
            return None

        client = _make_client(homophilous_graph)
        client.extra_loss = extra
        client.local_train(epochs=2)
        assert len(calls) == 2


class TestTrainer:
    def _trainer(self, clients, rounds=3, participation=1.0):
        config = FederatedConfig(rounds=rounds, local_epochs=2, lr=0.02,
                                 participation=participation, seed=0)
        return FederatedTrainer(clients, make_model_factory("gcn", hidden=16),
                                config)

    def test_requires_at_least_one_client(self):
        with pytest.raises(ValueError):
            FederatedTrainer([], make_model_factory("gcn"))

    def test_initial_weights_synchronised(self, community_clients):
        trainer = self._trainer(community_clients)
        first = trainer.clients[0].get_weights()
        for client in trainer.clients[1:]:
            other = client.get_weights()
            assert all(np.allclose(first[k], other[k]) for k in first)

    def test_run_improves_over_initial(self, community_clients):
        trainer = self._trainer(community_clients, rounds=8)
        initial = trainer.evaluate("test")
        trainer.run()
        assert trainer.evaluate("test") > initial

    def test_history_recorded_every_round(self, community_clients):
        trainer = self._trainer(community_clients, rounds=4)
        history = trainer.run()
        assert len(history.rounds) == 4
        assert len(history.client_accuracy[0]) == len(trainer.clients)

    def test_weights_identical_across_clients_after_round(self, community_clients):
        trainer = self._trainer(community_clients, rounds=2)
        trainer.run()
        first = trainer.clients[0].get_weights()
        for client in trainer.clients[1:]:
            other = client.get_weights()
            assert all(np.allclose(first[k], other[k]) for k in first)

    def test_partial_participation_selects_subset(self, community_clients):
        trainer = self._trainer(community_clients, participation=0.34)
        participants = trainer._select_participants()
        assert len(participants) == 1

    def test_full_participation_selects_all(self, community_clients):
        trainer = self._trainer(community_clients, participation=1.0)
        assert len(trainer._select_participants()) == len(trainer.clients)

    def test_client_reports(self, community_clients):
        trainer = self._trainer(community_clients, rounds=2)
        trainer.run()
        reports = trainer.client_reports()
        assert len(reports) == len(trainer.clients)
        assert all(0.0 <= r.accuracy <= 1.0 for r in reports)
        assert all(r.homophily is not None for r in reports)

    def test_communication_tracked(self, community_clients):
        trainer = self._trainer(community_clients, rounds=2)
        trainer.run()
        summary = trainer.tracker.summary()
        assert summary["rounds"] == 2
        assert summary["uploaded"] > 0
        assert summary["downloaded"] > 0

    def test_evaluate_weighted_by_test_nodes(self, community_clients):
        trainer = self._trainer(community_clients, rounds=1)
        trainer.run()
        accuracy = trainer.evaluate("test")
        manual_num = sum(c.evaluate("test") * c.graph.test_mask.sum()
                         for c in trainer.clients)
        manual_den = sum(c.graph.test_mask.sum() for c in trainer.clients)
        assert accuracy == pytest.approx(manual_num / manual_den)


class TestCommunicationTracker:
    def test_totals(self):
        tracker = CommunicationTracker()
        tracker.record_upload("model", 100)
        tracker.record_download("model", 50)
        tracker.next_round()
        assert tracker.total_uploaded == 100
        assert tracker.total_downloaded == 50
        assert tracker.total == 150
        assert tracker.per_round() == 150

    def test_per_round_without_rounds(self):
        tracker = CommunicationTracker()
        tracker.record_upload("x", 10)
        assert tracker.per_round() == 10

    def test_summary_lists_kinds(self):
        tracker = CommunicationTracker()
        tracker.record_upload("embeddings", 5)
        tracker.record_download("masks", 5)
        assert set(tracker.summary()["kinds"]) == {"embeddings", "masks"}

"""Tests for graph serialisation (save_graph / load_graph)."""

import numpy as np
import pytest

from repro.datasets.io import load_graph, save_graph


class TestGraphIO:
    def test_roundtrip_preserves_everything(self, homophilous_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(homophilous_graph, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == homophilous_graph.num_nodes
        assert loaded.num_classes == homophilous_graph.num_classes
        assert (loaded.adjacency != homophilous_graph.adjacency).nnz == 0
        assert np.allclose(loaded.features, homophilous_graph.features)
        assert np.array_equal(loaded.labels, homophilous_graph.labels)
        assert np.array_equal(loaded.train_mask, homophilous_graph.train_mask)
        assert np.array_equal(loaded.test_mask, homophilous_graph.test_mask)
        assert loaded.name == homophilous_graph.name

    def test_roundtrip_client_subgraph(self, noniid_clients, tmp_path):
        client = noniid_clients[0]
        path = tmp_path / "client.npz"
        save_graph(client, path)
        loaded = load_graph(path)
        # The global class count survives even if the subgraph misses classes.
        assert loaded.num_classes == client.num_classes

    def test_creates_parent_directories(self, tiny_graph, tmp_path):
        path = tmp_path / "nested" / "dir" / "graph.npz"
        save_graph(tiny_graph, path)
        assert load_graph(path).num_nodes == tiny_graph.num_nodes

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "does-not-exist.npz")

    def test_loaded_graph_is_trainable(self, tiny_graph, tmp_path):
        """A reloaded graph can be used directly by the federated stack."""
        from repro.federated import Client
        from repro.models import GCN

        path = tmp_path / "graph.npz"
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        client = Client(0, loaded,
                        GCN(loaded.num_features, 8, loaded.num_classes),
                        local_epochs=1)
        loss = client.local_train()
        assert np.isfinite(loss)

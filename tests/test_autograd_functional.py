"""Tests for functional ops: softmax, spmm, dropout, concat and losses."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F


class TestActivations:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        out = F.softmax(x, axis=-1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_invariant_to_shift(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_softmax_gradient_sums_to_zero(self):
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3)),
                   requires_grad=True)
        out = F.softmax(x, axis=-1)
        out[np.array([0]), np.array([0])].sum().backward()
        # Gradient of a softmax output w.r.t. its logits sums to zero per row.
        assert np.allclose(x.grad.sum(axis=1), [0.0, 0.0], atol=1e-10)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(2).normal(size=(4, 5))
        a = F.log_softmax(Tensor(x)).data
        b = np.log(F.softmax(Tensor(x)).data)
        assert np.allclose(a, b)

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        out = F.leaky_relu(x, negative_slope=0.1)
        assert np.allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        assert np.allclose(x.grad, [0.1, 1.0])

    def test_elu_continuity(self):
        x = Tensor(np.array([-1e-9, 1e-9]))
        out = F.elu(x)
        assert np.allclose(out.data, [0.0, 0.0], atol=1e-8)

    def test_relu_alias(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert np.allclose(F.relu(x).data, [0.0, 1.0])

    def test_sigmoid_tanh_aliases(self):
        x = Tensor(np.array([0.0]))
        assert F.sigmoid(x).data[0] == pytest.approx(0.5)
        assert F.tanh(x).data[0] == pytest.approx(0.0)


class TestSparsePropagation:
    def test_spmm_matches_dense(self):
        rng = np.random.default_rng(0)
        dense_adj = (rng.random((6, 6)) < 0.4).astype(float)
        x = rng.normal(size=(6, 3))
        sparse_adj = sp.csr_matrix(dense_adj)
        out = F.spmm(sparse_adj, Tensor(x))
        assert np.allclose(out.data, dense_adj @ x)

    def test_spmm_gradient_is_transpose_propagation(self):
        rng = np.random.default_rng(1)
        dense_adj = (rng.random((5, 5)) < 0.5).astype(float)
        sparse_adj = sp.csr_matrix(dense_adj)
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        F.spmm(sparse_adj, x).sum().backward()
        expected = dense_adj.T @ np.ones((5, 2))
        assert np.allclose(x.grad, expected)

    def test_spmm_rejects_dense_first_operand(self):
        with pytest.raises(TypeError):
            F.spmm(np.eye(3), Tensor(np.ones((3, 2))))

    def test_spmm_numerical_gradient(self):
        """Finite-difference check of the spmm backward pass."""
        rng = np.random.default_rng(7)
        adjacency = sp.random(6, 6, density=0.5, format="csr", random_state=3)
        base = rng.normal(size=(6, 3))

        def loss_value(array):
            out = F.spmm(adjacency, Tensor(array))
            return float((out * out).sum().data)

        x = Tensor(base.copy(), requires_grad=True)
        out = F.spmm(adjacency, x)
        (out * out).sum().backward()

        eps = 1e-6
        numeric = np.zeros_like(base)
        for i in range(base.shape[0]):
            for j in range(base.shape[1]):
                plus = base.copy()
                plus[i, j] += eps
                minus = base.copy()
                minus[i, j] -= eps
                numeric[i, j] = (loss_value(plus) - loss_value(minus)) / (2 * eps)
        assert np.allclose(x.grad, numeric, atol=1e-5)

    def test_sddmm_matches_dense_product(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(5, 4))
        rows = np.array([0, 0, 2, 4])
        cols = np.array([1, 3, 2, 0])
        out = F.sddmm(rows, cols, Tensor(a), Tensor(b))
        assert np.allclose(out.data, (a @ b.T)[rows, cols])

    def test_sddmm_numerical_gradient(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(4, 3))
        rows = np.array([0, 1, 1, 3])
        cols = np.array([2, 0, 3, 3])

        def loss_value(array):
            vals = F.sddmm(rows, cols, Tensor(array), Tensor(array))
            return float((vals * vals).sum().data)

        x = Tensor(base.copy(), requires_grad=True)
        vals = F.sddmm(rows, cols, x, x)
        (vals * vals).sum().backward()

        eps = 1e-6
        numeric = np.zeros_like(base)
        for i in range(base.shape[0]):
            for j in range(base.shape[1]):
                plus = base.copy()
                plus[i, j] += eps
                minus = base.copy()
                minus[i, j] -= eps
                numeric[i, j] = (loss_value(plus) - loss_value(minus)) / (2 * eps)
        assert np.allclose(x.grad, numeric, atol=1e-5)

    def test_spmm_pattern_matches_dense(self):
        rng = np.random.default_rng(4)
        pattern = sp.random(6, 6, density=0.4, format="csr", random_state=5)
        x = rng.normal(size=(6, 2))
        values = Tensor(rng.normal(size=pattern.nnz))
        out = F.spmm_pattern(pattern, values, Tensor(x))
        rebuilt = sp.csr_matrix((values.data, pattern.indices, pattern.indptr),
                                shape=pattern.shape)
        assert np.allclose(out.data, rebuilt @ x)

    def test_spmm_pattern_gradients(self):
        """d values = grad·dense sampled at the pattern; d dense = Sᵀ grad."""
        pattern = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        values = Tensor(np.array([2.0, 3.0, 4.0]), requires_grad=True)
        dense = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        F.spmm_pattern(pattern, values, dense).sum().backward()
        # rows of stored entries: (0,1), (1,0), (1,1); grad upstream all-ones.
        assert np.allclose(values.grad, [3.0 + 4.0, 1.0 + 2.0, 3.0 + 4.0])
        matrix = np.array([[0.0, 2.0], [3.0, 4.0]])
        assert np.allclose(dense.grad, matrix.T @ np.ones((2, 2)))

    def test_spmm_pattern_rejects_wrong_value_count(self):
        pattern = sp.csr_matrix(np.eye(3))
        with pytest.raises(ValueError):
            F.spmm_pattern(pattern, Tensor(np.ones(5)), Tensor(np.ones((3, 2))))

    def test_propagate_accepts_dense_or_sparse(self):
        x = Tensor(np.ones((4, 2)))
        adj = np.eye(4)
        dense_out = F.propagate(adj, x)
        sparse_out = F.propagate(sp.csr_matrix(adj), x)
        assert np.allclose(dense_out.data, sparse_out.data)


class TestDropout:
    def test_dropout_identity_when_not_training(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_zero_probability_is_identity(self):
        x = Tensor(np.ones((5, 5)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_dropout_gradient_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((50, 50)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        # Gradient equals the inverted-dropout mask itself.
        assert np.allclose(x.grad, out.data)


class TestCombination:
    def test_concat_shapes(self):
        a = Tensor(np.ones((3, 2)))
        b = Tensor(np.zeros((3, 4)))
        out = F.concat([a, b], axis=1)
        assert out.shape == (3, 6)

    def test_concat_gradient_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.concat([a, b], axis=1)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, 2 * np.ones((2, 2)))
        assert np.allclose(b.grad, 2 * np.ones((2, 3)))

    def test_stack_mean(self):
        tensors = [Tensor(np.full((2, 2), v)) for v in (1.0, 2.0, 3.0)]
        out = F.stack_mean(tensors)
        assert np.allclose(out.data, 2.0)

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(3))
        assert F.as_tensor(t) is t
        assert isinstance(F.as_tensor(np.ones(3)), Tensor)


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        labels = np.array([0, 1])
        loss = F.cross_entropy(logits, labels)
        assert loss.item() < 1e-4

    def test_cross_entropy_uniform_equals_log_num_classes(self):
        logits = Tensor(np.zeros((4, 3)))
        labels = np.array([0, 1, 2, 0])
        loss = F.cross_entropy(logits, labels)
        assert loss.item() == pytest.approx(np.log(3.0), abs=1e-8)

    def test_cross_entropy_mask_boolean(self):
        logits = Tensor(np.array([[5.0, -5.0], [-5.0, 5.0]]))
        labels = np.array([1, 1])  # first row is wrong, second right
        mask = np.array([False, True])
        loss = F.cross_entropy(logits, labels, mask=mask)
        assert loss.item() < 1e-3

    def test_cross_entropy_empty_mask_raises(self):
        logits = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1]),
                            mask=np.zeros(2, dtype=bool))

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([2]))
        loss.backward()
        # Gradient is softmax - onehot: positive for wrong classes, negative
        # for the true class.
        assert logits.grad[0, 2] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 1] > 0

    def test_nll_loss_matches_cross_entropy(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        ce = F.cross_entropy(Tensor(raw), labels).item()
        nll = F.nll_loss(F.log_softmax(Tensor(raw)), labels).item()
        assert ce == pytest.approx(nll, abs=1e-10)

    def test_mse_loss_zero_for_identical(self):
        x = Tensor(np.ones((3, 3)))
        assert F.mse_loss(x, np.ones((3, 3))).item() == pytest.approx(0.0)

    def test_frobenius_loss_matches_norm(self):
        a = Tensor(np.array([[3.0, 0.0], [0.0, 4.0]]))
        b = np.zeros((2, 2))
        assert F.frobenius_loss(a, b).item() == pytest.approx(5.0, abs=1e-5)

    def test_l2_regularisation(self):
        params = [Tensor(np.array([3.0])), Tensor(np.array([4.0]))]
        assert F.l2_regularisation(params).item() == pytest.approx(25.0)

    def test_l2_regularisation_empty(self):
        assert F.l2_regularisation([]).item() == pytest.approx(0.0)

    def test_mse_target_detached(self):
        target = Tensor(np.ones((2, 2)), requires_grad=True)
        pred = Tensor(np.zeros((2, 2)), requires_grad=True)
        F.mse_loss(pred, target).backward()
        assert target.grad is None
        assert pred.grad is not None

"""Tests for the FGL baselines: FedGNN wrappers, FedGL, GCFL+, FedSage+, FED-PUB."""

import numpy as np
import pytest

from repro.federated import FederatedConfig
from repro.fgl import (
    BASELINE_REGISTRY,
    FedGL,
    FedPub,
    FedSagePlus,
    FederatedGNN,
    GCFLPlus,
    build_baseline,
    list_baselines,
)
from repro.fgl.fedsage import NeighGen, augment_with_generated_neighbours


FAST = FederatedConfig(rounds=3, local_epochs=2, lr=0.02, seed=0)


class TestRegistry:
    def test_lists_all_expected_baselines(self):
        names = list_baselines()
        for expected in ("fedgcn", "fedgcnii", "fedgamlp", "fedgprgnn",
                         "fedggcn", "fedglognn", "fedgl", "gcfl+", "fedsage+",
                         "fed-pub"):
            assert expected in names

    def test_unknown_baseline_raises(self, community_clients):
        with pytest.raises(KeyError):
            build_baseline("fedunknown", community_clients)

    def test_build_returns_trainer(self, community_clients):
        trainer = build_baseline("fedgcn", community_clients, config=FAST,
                                 hidden=16)
        assert isinstance(trainer, FederatedGNN)
        assert trainer.name == "FedGCN"

    @pytest.mark.parametrize("name", ["fedgcn", "fedgcnii", "fedgamlp",
                                      "fedgprgnn", "fedglognn"])
    def test_fed_gnn_variants_train(self, name, community_clients):
        trainer = build_baseline(name, community_clients, config=FAST, hidden=16)
        history = trainer.run()
        assert len(history.rounds) == FAST.rounds
        assert 0.0 <= trainer.evaluate("test") <= 1.0


class TestFedGL:
    def test_pseudo_labels_generated(self, community_clients):
        trainer = FedGL(community_clients, hidden=16, config=FAST)
        trainer.run()
        assert len(trainer._pseudo) == len(trainer.clients)

    def test_extra_loss_wired(self, community_clients):
        trainer = FedGL(community_clients, hidden=16, config=FAST)
        assert all(c.extra_loss is not None for c in trainer.clients)

    def test_communication_includes_predictions(self, community_clients):
        trainer = FedGL(community_clients, hidden=16, config=FAST)
        trainer.run()
        assert trainer.tracker.uploaded["node_predictions"] > 0

    def test_confidence_threshold_respected(self, community_clients):
        trainer = FedGL(community_clients, hidden=16, confidence=1.1,
                        config=FAST)
        trainer.run()
        # Impossible confidence: no pseudo-labels should pass the filter.
        assert all(mask.sum() == 0 for _, mask in trainer._pseudo.values())


class TestGCFLPlus:
    def test_runs_and_records_clusters(self, noniid_clients):
        trainer = GCFLPlus(noniid_clients, hidden=16, num_clusters=2,
                           config=FAST)
        trainer.run()
        clusters = set(trainer._cluster_of.values())
        assert len(clusters) <= 2
        assert len(trainer._cluster_states) >= 1

    def test_personalize_returns_cluster_state(self, noniid_clients):
        trainer = GCFLPlus(noniid_clients, hidden=16, num_clusters=2,
                           config=FAST)
        trainer.run()
        client = trainer.clients[0]
        state = trainer.personalize(client, trainer.server.broadcast())
        cluster = trainer._cluster_of[client.client_id]
        expected = trainer._cluster_states[cluster]
        assert all(np.allclose(state[k], expected[k]) for k in state)

    def test_gradient_communication_tracked(self, noniid_clients):
        trainer = GCFLPlus(noniid_clients, hidden=16, config=FAST)
        trainer.run()
        assert trainer.tracker.uploaded["model_gradients"] > 0


class TestFedSagePlus:
    def test_neighgen_fit_and_generate(self, homophilous_graph):
        generator = NeighGen(seed=0).fit(homophilous_graph)
        samples = generator.generate(homophilous_graph.features[0], 3)
        assert samples.shape == (3, homophilous_graph.num_features)

    def test_neighgen_generate_before_fit_raises(self, homophilous_graph):
        with pytest.raises(RuntimeError):
            NeighGen().generate(homophilous_graph.features[0], 1)

    def test_augmentation_adds_nodes_not_supervision(self, homophilous_graph):
        generator = NeighGen(seed=0).fit(homophilous_graph)
        augmented = augment_with_generated_neighbours(homophilous_graph,
                                                      generator, seed=0)
        assert augmented.num_nodes > homophilous_graph.num_nodes
        assert augmented.train_mask.sum() == homophilous_graph.train_mask.sum()
        assert augmented.test_mask.sum() == homophilous_graph.test_mask.sum()

    def test_trainer_runs_on_augmented_graphs(self, community_clients):
        trainer = FedSagePlus(community_clients, hidden=16, config=FAST)
        trainer.run()
        assert 0.0 <= trainer.evaluate("test") <= 1.0
        assert all(c.graph.metadata.get("generated_nodes", 0) >= 0
                   for c in trainer.clients)

    def test_neighgen_communication_tracked(self, community_clients):
        trainer = FedSagePlus(community_clients, hidden=16, config=FAST)
        assert trainer.tracker.uploaded["neighgen_parameters"] > 0


class TestFedPub:
    def test_personalized_states_differ_per_client(self, noniid_clients):
        trainer = FedPub(noniid_clients, hidden=16, config=FAST, local_mix=0.5)
        trainer.run()
        ids = [c.client_id for c in trainer.clients]
        states = [trainer._personalized[i] for i in ids if i in trainer._personalized]
        assert len(states) >= 2
        key = next(iter(states[0]))
        assert not all(np.allclose(states[0][key], s[key]) for s in states[1:])

    def test_personalize_mixes_local_weights(self, noniid_clients):
        trainer = FedPub(noniid_clients, hidden=16, config=FAST, local_mix=1.0)
        trainer.run()
        client = trainer.clients[0]
        mixed = trainer.personalize(client, trainer.server.broadcast())
        local = trainer._local_states[client.client_id]
        assert all(np.allclose(mixed[k], local[k]) for k in mixed)

    def test_runs_and_evaluates(self, noniid_clients):
        trainer = FedPub(noniid_clients, hidden=16, config=FAST)
        history = trainer.run()
        assert history.final_test_accuracy >= 0.0

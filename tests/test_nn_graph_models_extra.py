"""Additional edge-case tests: empty-ish graphs, single-class clients,
isolated nodes and tiny client subgraphs flowing through the full stack."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, functional as F
from repro.core import AdaFGLConfig
from repro.core.adafgl import PersonalizedClient
from repro.core.hcs import homophily_confidence_score
from repro.federated import Client
from repro.graph import Graph, adjacency_from_edges, normalize_adjacency
from repro.models import GCN


def _make_graph(num_nodes, num_classes, edges, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.arange(num_nodes) % num_classes
    graph = Graph(
        adjacency=adjacency_from_edges(np.asarray(edges).reshape(-1, 2),
                                       num_nodes),
        features=rng.normal(size=(num_nodes, 6)),
        labels=labels,
        train_mask=np.ones(num_nodes, dtype=bool),
        metadata={"num_classes": num_classes},
    )
    graph.test_mask = np.ones(num_nodes, dtype=bool)
    return graph


class TestEdgeCases:
    def test_gcn_on_graph_with_isolated_nodes(self):
        graph = _make_graph(6, 2, [[0, 1], [2, 3]])
        model = GCN(graph.num_features, 8, graph.num_classes)
        out = model(Tensor(graph.features), graph.adjacency)
        assert np.all(np.isfinite(out.data))

    def test_normalize_edgeless_graph(self):
        adjacency = sp.csr_matrix((4, 4))
        norm = normalize_adjacency(adjacency, r=0.5)
        assert np.all(np.isfinite(norm.toarray()))

    def test_client_with_single_class_subgraph(self):
        graph = _make_graph(8, 1, [[i, i + 1] for i in range(7)])
        graph.metadata["num_classes"] = 3
        client = Client(0, graph, GCN(graph.num_features, 8, 3),
                        local_epochs=1)
        loss = client.local_train()
        assert np.isfinite(loss)
        assert 0.0 <= client.evaluate("test") <= 1.0

    def test_hcs_on_tiny_training_set(self):
        graph = _make_graph(10, 2, [[i, i + 1] for i in range(9)])
        graph.train_mask = np.zeros(10, dtype=bool)
        graph.train_mask[0] = True
        score = homophily_confidence_score(graph, seed=0)
        assert score == 0.5  # falls back to the neutral score

    def test_personalized_client_on_tiny_subgraph(self):
        graph = _make_graph(12, 3, [[i, (i + 1) % 12] for i in range(12)])
        probs = np.full((12, 3), 1.0 / 3.0)
        config = AdaFGLConfig(rounds=1, local_epochs=1, hidden=8,
                              personalized_epochs=2, k_prop=2,
                              message_layers=1, seed=0)
        client = PersonalizedClient(0, graph, probs, config)
        loss = client.train_epoch()
        assert np.isfinite(loss)
        predictions = client.predict()
        assert predictions.shape == (12, 3)
        assert np.all(np.isfinite(predictions))

    def test_cross_entropy_single_node_mask(self):
        logits = Tensor(np.zeros((5, 3)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0, 1]),
                               mask=np.array([2]))
        loss.backward()
        assert np.isfinite(loss.item())
        # Only the masked row receives gradient signal.
        assert np.allclose(logits.grad[[0, 1, 3, 4]], 0.0)

    def test_softmax_extreme_logits_stay_finite(self):
        logits = Tensor(np.array([[1e4, -1e4], [-1e4, 1e4]]))
        out = F.softmax(logits)
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_label_onehot_respects_global_class_count(self):
        graph = _make_graph(4, 2, [[0, 1]])
        graph.metadata["num_classes"] = 5
        onehot = graph.label_onehot()
        assert onehot.shape == (4, 5)

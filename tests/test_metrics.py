"""Tests for classification metrics, history tracking and distributions."""

import numpy as np
import pytest

from repro.metrics import (
    ClientReport,
    TrainingHistory,
    accuracy,
    client_label_distribution,
    client_topology_distribution,
    macro_f1,
    masked_accuracy,
)
from repro.simulation import community_split


class TestClassificationMetrics:
    def test_accuracy_from_class_ids(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_from_probabilities(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(probs, np.array([0, 1])) == 1.0

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1]))

    def test_masked_accuracy_boolean(self):
        preds = np.array([0, 1, 0, 1])
        labels = np.array([0, 0, 0, 0])
        mask = np.array([True, False, True, False])
        assert masked_accuracy(preds, labels, mask) == 1.0

    def test_masked_accuracy_index_array(self):
        preds = np.array([0, 1, 0])
        labels = np.array([1, 1, 1])
        assert masked_accuracy(preds, labels, np.array([1])) == 1.0

    def test_masked_accuracy_empty_mask(self):
        assert masked_accuracy(np.array([0]), np.array([0]),
                               np.zeros(1, dtype=bool)) == 0.0

    def test_macro_f1_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(labels, labels) == pytest.approx(1.0)

    def test_macro_f1_penalises_minority_errors(self):
        labels = np.array([0] * 9 + [1])
        majority = np.zeros(10, dtype=int)
        assert macro_f1(majority, labels) < accuracy(majority, labels)


class TestTrainingHistory:
    def test_record_and_final(self):
        history = TrainingHistory()
        history.record(1, 0.5, 0.4, 1.2)
        history.record(2, 0.7, 0.6, 0.8)
        assert history.final_test_accuracy == 0.6
        assert history.best_test_accuracy == 0.6
        assert history.rounds == [1, 2]

    def test_rounds_to_reach(self):
        history = TrainingHistory()
        for i, acc in enumerate([0.3, 0.5, 0.7], start=1):
            history.record(i, acc, acc, 1.0)
        assert history.rounds_to_reach(0.5) == 2
        assert history.rounds_to_reach(0.9) is None

    def test_empty_history(self):
        history = TrainingHistory()
        assert history.final_test_accuracy == 0.0
        assert history.best_test_accuracy == 0.0

    def test_as_dict(self):
        history = TrainingHistory()
        history.record(1, 0.1, 0.2, 0.3)
        data = history.as_dict()
        assert data["rounds"] == [1]
        assert data["test_accuracy"] == [0.2]

    def test_client_report_fields(self):
        report = ClientReport(client_id=2, num_nodes=10, num_test_nodes=3,
                              accuracy=0.5, homophily=0.8)
        assert report.client_id == 2
        assert report.homophily == 0.8


class TestDistributions:
    def test_label_distribution_shape(self, homophilous_graph):
        clients = community_split(homophilous_graph, 3, seed=0)
        matrix = client_label_distribution(clients)
        assert matrix.shape[0] == len(clients)
        assert matrix.sum() == homophilous_graph.num_nodes

    def test_label_distribution_empty(self):
        assert client_label_distribution([]).size == 0

    def test_topology_distribution_bounds(self, homophilous_graph):
        clients = community_split(homophilous_graph, 3, seed=0)
        stats = client_topology_distribution(clients)
        assert stats.shape == (len(clients), 2)
        assert np.all(stats >= 0.0) and np.all(stats <= 1.0)

    def test_community_split_label_concentration(self, homophilous_graph):
        """Community split concentrates labels within clients (Fig. 2a)."""
        clients = community_split(homophilous_graph, 3, seed=0)
        matrix = client_label_distribution(
            clients, num_classes=homophilous_graph.num_classes)
        fractions = matrix / matrix.sum(axis=1, keepdims=True)
        # At least one client should be dominated by a subset of classes.
        assert fractions.max() > 1.5 / homophilous_graph.num_classes

"""Tests for the sparse-first propagation engine.

Covers the top-k sparsified P̃ builder (dense/sparse equivalence and the
small-k approximation), the :class:`PropagationCache` precompute/invalidation
behaviour, and the sparse end-to-end client path.
"""

import dataclasses

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    AdaFGLConfig,
    FederatedKnowledgeExtractor,
    PropagationCache,
    optimized_propagation_matrix,
)
from repro.core.adafgl import PersonalizedClient
from repro.federated import FederatedConfig


EXACT_CONFIG = AdaFGLConfig(rounds=2, local_epochs=1, hidden=16,
                            personalized_epochs=6, k_prop=2,
                            message_layers=1, dropout=0.0, seed=0)


def _dirichlet_probs(graph, seed=0):
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.ones(graph.num_classes), size=graph.num_nodes)


class TestSparsePropagationMatrix:
    def test_full_support_matches_dense(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        dense = optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                             alpha=0.6)
        sparse = optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                              alpha=0.6, sparse=True)
        assert sp.issparse(sparse)
        assert np.allclose(sparse.toarray(), dense, atol=1e-12)

    def test_rows_sum_to_one(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph, seed=1)
        matrix = optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                              alpha=0.5, sparse=True, top_k=8)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)
        assert np.all(matrix.data >= 0)

    def test_top_k_bounds_row_nnz(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph, seed=2)
        top_k = 5
        matrix = optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                              alpha=0.5, sparse=True,
                                              top_k=top_k)
        degrees = np.asarray(
            (tiny_graph.adjacency != 0).sum(axis=1)).ravel()
        row_nnz = np.diff(matrix.indptr)
        # Each row keeps at most its local neighbours (plus self-loop) and
        # top_k similarity entries.
        assert np.all(row_nnz <= degrees + top_k + 1)

    def test_small_top_k_much_sparser_than_dense(self, homophilous_graph):
        probs = _dirichlet_probs(homophilous_graph, seed=3)
        full = optimized_propagation_matrix(homophilous_graph.adjacency,
                                            probs, alpha=0.5, sparse=True)
        small = optimized_propagation_matrix(homophilous_graph.adjacency,
                                             probs, alpha=0.5, sparse=True,
                                             top_k=4)
        assert small.nnz < full.nnz / 4

    def test_top_k_without_sparse_rejected(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        with pytest.raises(ValueError):
            optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                         top_k=8)

    def test_invalid_top_k_rejected(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        with pytest.raises(ValueError):
            optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                         sparse=True, top_k=0)

    def test_blockwise_sweep_matches_single_block(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph, seed=4)
        one_block = optimized_propagation_matrix(
            tiny_graph.adjacency, probs, alpha=0.5, sparse=True, top_k=6,
            block_size=tiny_graph.num_nodes + 1)
        many_blocks = optimized_propagation_matrix(
            tiny_graph.adjacency, probs, alpha=0.5, sparse=True, top_k=6,
            block_size=7)
        assert np.allclose(one_block.toarray(), many_blocks.toarray())


class TestPropagationCache:
    def test_blocks_match_direct_products(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        prop = optimized_propagation_matrix(tiny_graph.adjacency, probs)
        cache = PropagationCache(prop, tiny_graph.features)
        blocks = cache.blocks(3)
        expected = tiny_graph.features
        for block in blocks:
            expected = prop @ expected
            assert np.allclose(block.data, expected)

    def test_sparse_operator_matches_dense(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        dense = optimized_propagation_matrix(tiny_graph.adjacency, probs)
        sparse = optimized_propagation_matrix(tiny_graph.adjacency, probs,
                                              sparse=True)
        dense_blocks = PropagationCache(dense, tiny_graph.features).blocks(2)
        sparse_blocks = PropagationCache(sparse, tiny_graph.features).blocks(2)
        for d, s in zip(dense_blocks, sparse_blocks):
            assert np.allclose(d.data, s.data, atol=1e-10)

    def test_concatenated_matches_blocks(self, tiny_graph):
        prop = np.eye(tiny_graph.num_nodes)
        cache = PropagationCache(prop, tiny_graph.features)
        concat = cache.concatenated(2)
        blocks = cache.blocks(2)
        assert np.allclose(
            concat.data, np.concatenate([b.data for b in blocks], axis=1))

    def test_blocks_are_constants(self, tiny_graph):
        cache = PropagationCache(np.eye(tiny_graph.num_nodes),
                                 tiny_graph.features)
        assert not cache.concatenated(2).requires_grad
        assert all(not b.requires_grad for b in cache.blocks(2))

    def test_incremental_extension_reuses_prefix(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        prop = optimized_propagation_matrix(tiny_graph.adjacency, probs)
        cache = PropagationCache(prop, tiny_graph.features)
        first = cache.blocks(1)[0].data
        assert cache.num_cached_hops == 1
        extended = cache.blocks(3)
        assert cache.num_cached_hops == 3
        assert extended[0].data is first

    def test_invalidates_when_propagation_changes(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        prop = optimized_propagation_matrix(tiny_graph.adjacency, probs)
        cache = PropagationCache(prop, tiny_graph.features)
        before = cache.concatenated(2).data
        cache.propagation = np.eye(tiny_graph.num_nodes)
        assert cache.num_cached_hops == 0
        after = cache.concatenated(2).data
        assert not np.allclose(before, after)
        # With the identity operator every block equals the raw features.
        assert np.allclose(cache.blocks(2)[1].data, tiny_graph.features)

    def test_shape_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            PropagationCache(np.eye(3), tiny_graph.features)
        cache = PropagationCache(np.eye(tiny_graph.num_nodes),
                                 tiny_graph.features)
        with pytest.raises(ValueError):
            cache.propagation = np.eye(3)
        with pytest.raises(ValueError):
            cache.blocks(0)


class TestSparseClientEquivalence:
    def test_full_support_predictions_identical(self, tiny_graph):
        """top_k=None sparse P̃ reproduces the dense pipeline exactly."""
        probs = _dirichlet_probs(tiny_graph)
        sparse_config = dataclasses.replace(
            EXACT_CONFIG, sparse_propagation=True, propagation_top_k=None)
        dense_client = PersonalizedClient(0, tiny_graph, probs, EXACT_CONFIG)
        sparse_client = PersonalizedClient(0, tiny_graph, probs,
                                           sparse_config)
        assert sp.issparse(sparse_client.propagation)
        assert np.allclose(dense_client.predict(), sparse_client.predict(),
                           atol=1e-9)
        for _ in range(4):
            dense_loss = dense_client.train_epoch()
            sparse_loss = sparse_client.train_epoch()
        assert dense_loss == pytest.approx(sparse_loss, abs=1e-8)
        assert np.allclose(dense_client.predict(), sparse_client.predict(),
                           atol=1e-8)

    def test_small_top_k_accuracy_within_tolerance(self, homophilous_graph):
        """top_k=32 stays close to the dense baseline after training."""
        probs = _dirichlet_probs(homophilous_graph)
        sparse_config = dataclasses.replace(
            EXACT_CONFIG, sparse_propagation=True, propagation_top_k=32)
        dense_client = PersonalizedClient(0, homophilous_graph, probs,
                                          EXACT_CONFIG)
        sparse_client = PersonalizedClient(0, homophilous_graph, probs,
                                           sparse_config)
        for _ in range(6):
            dense_client.train_epoch()
            sparse_client.train_epoch()
        dense_acc = dense_client.evaluate("test")
        sparse_acc = sparse_client.evaluate("test")
        assert abs(dense_acc - sparse_acc) <= 0.1

    def test_client_propagation_reassignment_syncs_cache(self, tiny_graph):
        """Swapping a client's P̃ invalidates its precompute cache."""
        probs = _dirichlet_probs(tiny_graph)
        client = PersonalizedClient(0, tiny_graph, probs, EXACT_CONFIG)
        before = client.predict()
        assert client.prop_cache.num_cached_hops > 0
        client.propagation = np.eye(tiny_graph.num_nodes)
        assert client.prop_cache.num_cached_hops == 0
        assert client.prop_cache.propagation is client.propagation
        after = client.predict()
        assert not np.allclose(before, after)

    def test_cache_disabled_matches_cached(self, tiny_graph):
        probs = _dirichlet_probs(tiny_graph)
        uncached_config = dataclasses.replace(EXACT_CONFIG,
                                              use_propagation_cache=False)
        cached = PersonalizedClient(0, tiny_graph, probs, EXACT_CONFIG)
        uncached = PersonalizedClient(0, tiny_graph, probs, uncached_config)
        assert cached.prop_cache is not None
        assert uncached.prop_cache is None
        assert np.allclose(cached.predict(), uncached.predict(), atol=1e-10)
        for _ in range(3):
            cached_loss = cached.train_epoch()
            uncached_loss = uncached.train_epoch()
        assert cached_loss == pytest.approx(uncached_loss, abs=1e-9)


class TestExtractorCaching:
    def test_client_probabilities_cached(self, community_clients):
        extractor = FederatedKnowledgeExtractor(
            community_clients, hidden=16,
            config=FederatedConfig(rounds=2, local_epochs=1, seed=0))
        extractor.run()
        first = extractor.client_probabilities()
        second = extractor.client_probabilities()
        assert all(a is b for a, b in zip(first, second))
        refreshed = extractor.client_probabilities(refresh=True)
        assert all(a is not b for a, b in zip(first, refreshed))
        assert all(np.allclose(a, b) for a, b in zip(first, refreshed))

    def test_cache_reset_after_rerun(self, community_clients):
        extractor = FederatedKnowledgeExtractor(
            community_clients, hidden=16,
            config=FederatedConfig(rounds=1, local_epochs=1, seed=0))
        extractor.run()
        first = extractor.client_probabilities()
        extractor.run()
        second = extractor.client_probabilities()
        assert all(a is not b for a, b in zip(first, second))

    def test_optimized_matrices_sparse_option(self, community_clients):
        extractor = FederatedKnowledgeExtractor(
            community_clients, hidden=16,
            config=FederatedConfig(rounds=1, local_epochs=1, seed=0))
        extractor.run()
        matrices = extractor.optimized_matrices(alpha=0.6, sparse=True,
                                                top_k=8)
        for matrix, graph in zip(matrices, extractor.client_graphs()):
            assert sp.issparse(matrix)
            assert matrix.shape == (graph.num_nodes, graph.num_nodes)

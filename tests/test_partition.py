"""Tests for Louvain, the Metis-style partitioner and client assignment."""

import numpy as np
import pytest

from repro.datasets import CSBMConfig, generate_csbm
from repro.graph import adjacency_from_edges
from repro.partition import (
    assign_communities_to_clients,
    louvain_communities,
    metis_partition,
)
from repro.partition.louvain import modularity
from repro.partition.metis import edge_cut


def two_cliques(size=10):
    """Two dense cliques joined by a single bridge edge."""
    edges = []
    for offset in (0, size):
        for i in range(size):
            for j in range(i + 1, size):
                edges.append((offset + i, offset + j))
    edges.append((0, size))
    return adjacency_from_edges(np.array(edges), 2 * size)


class TestLouvain:
    def test_separates_two_cliques(self):
        adj = two_cliques()
        communities = louvain_communities(adj, seed=0)
        first = set(communities[:10])
        second = set(communities[10:])
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_positive_modularity_on_clustered_graph(self, homophilous_graph):
        communities = louvain_communities(homophilous_graph.adjacency, seed=0)
        assert modularity(homophilous_graph.adjacency, communities) > 0.2

    def test_labels_contiguous(self, homophilous_graph):
        communities = louvain_communities(homophilous_graph.adjacency, seed=0)
        unique = np.unique(communities)
        assert np.array_equal(unique, np.arange(unique.size))

    def test_more_than_one_community_on_csbm(self):
        graph = generate_csbm(CSBMConfig(num_nodes=200, blocks_per_class=3,
                                         seed=0))
        communities = louvain_communities(graph.adjacency, seed=0)
        assert np.unique(communities).size >= 3

    def test_deterministic_given_seed(self, homophilous_graph):
        a = louvain_communities(homophilous_graph.adjacency, seed=5)
        b = louvain_communities(homophilous_graph.adjacency, seed=5)
        assert np.array_equal(a, b)

    def test_beats_random_partition_modularity(self, homophilous_graph):
        communities = louvain_communities(homophilous_graph.adjacency, seed=0)
        rng = np.random.default_rng(0)
        random_partition = rng.integers(0, np.unique(communities).size,
                                        size=communities.size)
        assert (modularity(homophilous_graph.adjacency, communities)
                > modularity(homophilous_graph.adjacency, random_partition))


class TestMetis:
    def test_partition_count_and_coverage(self, homophilous_graph):
        parts = metis_partition(homophilous_graph.adjacency, 4, seed=0)
        assert parts.shape[0] == homophilous_graph.num_nodes
        assert np.unique(parts).size == 4

    def test_balance(self, homophilous_graph):
        parts = metis_partition(homophilous_graph.adjacency, 5, seed=0)
        sizes = np.bincount(parts)
        assert sizes.max() <= 1.6 * sizes.min() + 3

    def test_single_part(self, homophilous_graph):
        parts = metis_partition(homophilous_graph.adjacency, 1)
        assert np.all(parts == 0)

    def test_too_many_parts_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            metis_partition(tiny_graph.adjacency, tiny_graph.num_nodes + 1)

    def test_invalid_parts_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            metis_partition(tiny_graph.adjacency, 0)

    def test_cut_better_than_random(self, homophilous_graph):
        parts = metis_partition(homophilous_graph.adjacency, 4, seed=0)
        rng = np.random.default_rng(1)
        random_parts = rng.integers(0, 4, size=homophilous_graph.num_nodes)
        assert (edge_cut(homophilous_graph.adjacency, parts)
                < edge_cut(homophilous_graph.adjacency, random_parts))

    def test_separates_cliques(self):
        adj = two_cliques()
        parts = metis_partition(adj, 2, seed=0)
        assert edge_cut(adj, parts) <= 3


class TestAssignment:
    def test_all_nodes_assigned_exactly_once(self):
        community = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        clients = assign_communities_to_clients(community, 2, seed=0)
        combined = np.sort(np.concatenate(clients))
        assert np.array_equal(combined, np.arange(8))

    def test_balanced_loads(self):
        community = np.repeat(np.arange(10), 20)
        clients = assign_communities_to_clients(community, 5, seed=0)
        sizes = [c.size for c in clients]
        assert max(sizes) - min(sizes) <= 20

    def test_communities_stay_whole(self):
        community = np.repeat(np.arange(4), 5)
        clients = assign_communities_to_clients(community, 2, seed=0)
        for nodes in clients:
            for comm in np.unique(community[nodes]):
                members = np.nonzero(community == comm)[0]
                assert set(members).issubset(set(nodes))

    def test_invalid_client_count(self):
        with pytest.raises(ValueError):
            assign_communities_to_clients(np.zeros(4, dtype=int), 0)

    def test_more_clients_than_communities(self):
        community = np.array([0, 0, 0, 1, 1, 1])
        clients = assign_communities_to_clients(community, 4, seed=0)
        non_empty = [c for c in clients if c.size > 0]
        assert len(non_empty) == 2

"""Setuptools entry point.

Packaging metadata lives in ``setup.cfg``.  A plain ``setup.py`` + ``setup.cfg``
layout (instead of ``pyproject.toml``) is used so that editable installs work
in fully offline environments that lack the ``wheel`` package required by
PEP 660 builds.
"""

from setuptools import setup

setup()
